"""The compiled metric kernel tier: bit-identity, fallback, composition.

The contract (see ``docs/architecture.md`` §Engines): ``engine='native'``
is a pure accelerator.  When the C extension is built, every per-source
first-violation verdict — and therefore the whole metric trajectory —
is bit-identical to ``scipy-serial``; when it is not built (or is
disabled via ``REPRO_DISABLE_NATIVE``), the request degrades to the
batched scipy loop with a recorded, counted fallback and the *results
do not change*.  The kernel also composes with the parallel engine:
pool workers answer their snapshot slices natively.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.core import _kernel as native_kernel
from repro.core.constraints import SpreadingOracle
from repro.core.parallel import ParallelConfig
from repro.core.perf import PerfCounters
from repro.core.spreading_metric import (
    ENGINES,
    SpreadingMetricConfig,
    compute_spreading_metric,
)
from repro.htp.hierarchy import binary_hierarchy
from repro.hypergraph import Hypergraph, planted_hierarchy_hypergraph, to_graph

needs_kernel = pytest.mark.skipif(
    not native_kernel.available(),
    reason="native kernel extension not built in this environment",
)


@pytest.fixture(scope="module")
def instance():
    hypergraph = planted_hierarchy_hypergraph(num_nodes=96, height=3, seed=5)
    spec = binary_hierarchy(hypergraph.total_size(), height=3)
    graph = to_graph(hypergraph, rng=random.Random(0))
    return hypergraph, graph, spec


@pytest.fixture(scope="module")
def sized_instance():
    base = planted_hierarchy_hypergraph(num_nodes=72, height=2, seed=9)
    sized = Hypergraph(
        72,
        nets=base.nets(),
        node_sizes=[1.0 + (v % 3) for v in base.nodes()],
        name="sized",
    )
    spec = binary_hierarchy(sized.total_size(), height=2)
    graph = to_graph(sized, rng=random.Random(0))
    return sized, graph, spec


def _metric(graph, spec, engine, seed, parallel=None, counters=None):
    config = SpreadingMetricConfig(
        delta=0.05, max_rounds=40, engine=engine, seed=seed, parallel=parallel
    )
    return compute_spreading_metric(
        graph, spec, config, rng=random.Random(seed), counters=counters
    )


def test_native_is_a_registered_engine():
    assert "native" in ENGINES
    with pytest.raises(ValueError):
        SpreadingMetricConfig(engine="navite")


@needs_kernel
class TestKernelBitIdentity:
    @pytest.mark.parametrize("seed", [0, 3, 11])
    def test_native_matches_scipy_serial(self, instance, seed):
        _, graph, spec = instance
        baseline = _metric(graph, spec, "scipy-serial", seed)
        result = _metric(graph, spec, "native", seed)
        assert result.lengths.tolist() == baseline.lengths.tolist()
        assert result.flows.tolist() == baseline.flows.tolist()
        assert result.objective == baseline.objective
        assert result.rounds == baseline.rounds
        assert result.injections == baseline.injections

    def test_native_matches_scipy_serial_with_node_sizes(self, sized_instance):
        _, graph, spec = sized_instance
        baseline = _metric(graph, spec, "scipy-serial", seed=2)
        result = _metric(graph, spec, "native", seed=2)
        assert result.lengths.tolist() == baseline.lengths.tolist()
        assert result.objective == baseline.objective

    def test_per_source_verdicts_match_oracle(self, instance):
        """Query-level identity: every Violation field, every source."""
        _, graph, spec = instance
        oracle = SpreadingOracle(graph, spec)
        rng = np.random.default_rng(7)
        lengths = rng.uniform(0.0, 0.3, graph.num_edges)
        lengths[rng.integers(0, graph.num_edges, 20)] = 0.0  # floored path
        oracle.set_lengths(lengths)
        oracle.install_weights()
        kernel = native_kernel.NativeMetricKernel(graph, spec, tol=oracle.tol)
        for source in graph.nodes():
            reference = oracle.violation_for(source, mode="first")
            _settled, got = kernel.check(source)
            assert got == reference

    def test_partial_dist_rows_are_a_settled_prefix(self, instance):
        """Worker-shipped rows agree with scipy wherever they are finite."""
        _, graph, spec = instance
        oracle = SpreadingOracle(graph, spec)
        rng = np.random.default_rng(3)
        oracle.set_lengths(rng.uniform(0.0, 0.2, graph.num_edges))
        oracle.install_weights()
        kernel = native_kernel.NativeMetricKernel(graph, spec, tol=oracle.tol)
        for source in list(graph.nodes())[:16]:
            row = np.full(graph.num_nodes, np.inf)
            settled, _ = kernel.check(source, out_row=row)
            finite = np.isfinite(row)
            assert int(finite.sum()) == settled
            scipy_row = oracle.batch_check([source], mode="first").dist[0]
            assert np.array_equal(row[finite], scipy_row[finite])
            assert row[source] == 0.0

    def test_parallel_composes_with_native_workers(self, instance):
        _, graph, spec = instance
        baseline = _metric(graph, spec, "scipy", seed=0)
        counters = PerfCounters()
        parallel = ParallelConfig(
            workers=2, min_sources_per_task=2, autoserial=False
        )
        result = _metric(
            graph, spec, "parallel", seed=0, parallel=parallel,
            counters=counters,
        )
        assert result.lengths.tolist() == baseline.lengths.tolist()
        assert result.rounds == baseline.rounds
        assert counters.pool_dispatches > 0
        assert counters.pool_fallbacks == 0

    def test_phase_breakdown_recorded(self, instance):
        _, graph, spec = instance
        counters = PerfCounters()
        _metric(graph, spec, "native", seed=0, counters=counters)
        assert counters.phase_seconds["kernel_seconds"] > 0.0
        assert counters.phase_seconds["python_overhead_seconds"] >= 0.0
        assert counters.native_fallbacks == 0
        assert counters.dijkstra_calls > 0
        assert counters.nodes_settled > 0


class TestDegradation:
    """``--engine native`` must keep working with no compiled extension."""

    def test_env_disable_degrades_to_scipy(self, instance, monkeypatch):
        _, graph, spec = instance
        monkeypatch.setenv(native_kernel.DISABLE_ENV, "1")
        assert not native_kernel.available()
        assert native_kernel.DISABLE_ENV in native_kernel.unavailable_reason()
        baseline_counters = PerfCounters()
        counters = PerfCounters()
        monkeypatch.delenv(native_kernel.DISABLE_ENV)
        baseline = _metric(
            graph, spec, "scipy", seed=1, counters=baseline_counters
        )
        monkeypatch.setenv(native_kernel.DISABLE_ENV, "1")
        result = _metric(graph, spec, "native", seed=1, counters=counters)
        assert result.lengths.tolist() == baseline.lengths.tolist()
        assert result.objective == baseline.objective
        assert counters.native_fallbacks == 1
        record = next(
            r for r in counters.degradations if r["site"] == "native-kernel"
        )
        assert record["action"] == "native-scipy"
        assert native_kernel.DISABLE_ENV in record["cause"]
        # No phase breakdown on the degraded path: the kernel never ran.
        assert "kernel_seconds" not in counters.phase_seconds

    def test_import_failure_degrades_to_scipy(self, instance, monkeypatch):
        """Simulate a box with no compiler: the extension never imported."""
        _, graph, spec = instance
        monkeypatch.delenv(native_kernel.DISABLE_ENV, raising=False)
        monkeypatch.setattr(native_kernel, "_native", None)
        monkeypatch.setattr(
            native_kernel, "_IMPORT_ERROR", "ImportError('no module')"
        )
        assert not native_kernel.available()
        assert "not built" in native_kernel.unavailable_reason()
        counters = PerfCounters()
        baseline = _metric(graph, spec, "scipy", seed=4)
        result = _metric(graph, spec, "native", seed=4, counters=counters)
        assert result.lengths.tolist() == baseline.lengths.tolist()
        assert counters.native_fallbacks == 1

    @needs_kernel
    def test_pool_payload_respects_disable(self, instance, monkeypatch):
        """Workers asked to go native fall back quietly when disabled."""
        from repro.core.parallel import MetricWorkerPool

        _, graph, spec = instance
        monkeypatch.setenv(native_kernel.DISABLE_ENV, "1")
        baseline = _metric(graph, spec, "scipy", seed=0)
        parallel = ParallelConfig(
            workers=2, min_sources_per_task=2, autoserial=False
        )
        with MetricWorkerPool(
            graph, spec, parallel=parallel, use_native=True
        ) as pool:
            config = SpreadingMetricConfig(
                delta=0.05, max_rounds=40, engine="parallel", seed=0,
                parallel=parallel,
            )
            result = compute_spreading_metric(
                graph, spec, config, rng=random.Random(0), pool=pool,
                spawn_pool=False,
            )
        assert result.lengths.tolist() == baseline.lengths.tolist()


class TestCLI:
    def test_unknown_engine_exits_2(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "tiny.hgr"
        assert main(["generate", str(path), "--nodes", "16", "--seed", "0"]) == 0
        with pytest.raises(SystemExit) as excinfo:
            main(["partition", str(path), "--engine", "nosuchengine"])
        assert excinfo.value.code == 2
        assert "invalid choice" in capsys.readouterr().err

    def test_native_engine_accepted(self, tmp_path):
        from repro.cli import main

        path = tmp_path / "tiny.hgr"
        assert main(["generate", str(path), "--nodes", "24", "--seed", "1"]) == 0
        # Works whether or not the extension is built: without it the
        # engine degrades to scipy and the run still succeeds.
        assert main(
            ["partition", str(path), "--engine", "native", "--height", "2",
             "--iterations", "1"]
        ) == 0
