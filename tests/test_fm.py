"""Unit tests for the FM bipartitioner."""

import random

import pytest

from repro.errors import PartitionError
from repro.hypergraph import Hypergraph
from repro.partitioning.fm import (
    FMConfig,
    cut_capacity,
    fm_bipartition,
    fm_refine,
)


def two_cliques():
    """Two 4-cliques joined by one net — obvious min cut of 1."""
    nets = []
    for base in (0, 4):
        for i in range(4):
            for j in range(i + 1, 4):
                nets.append((base + i, base + j))
    nets.append((0, 4))
    return Hypergraph(8, nets=nets)


class TestCutCapacity:
    def test_counts_spanning_nets(self):
        h = Hypergraph(4, nets=[(0, 1), (1, 2), (2, 3)])
        assert cut_capacity(h, [0, 0, 1, 1]) == 1.0
        assert cut_capacity(h, [0, 1, 0, 1]) == 3.0

    def test_weighted(self):
        h = Hypergraph(3, nets=[(0, 1), (1, 2)], net_capacities=[2.0, 5.0])
        assert cut_capacity(h, [0, 0, 1]) == 5.0


class TestRefine:
    def test_improves_bad_split(self):
        h = two_cliques()
        # interleaved split cuts many nets
        sides = [0, 1, 0, 1, 0, 1, 0, 1]
        refined, cut = fm_refine(h, sides, 4, 4)
        assert cut == 1.0
        assert sorted(v for v in range(8) if refined[v] == 0) in (
            [0, 1, 2, 3],
            [4, 5, 6, 7],
        )

    def test_exact_balance_window_still_refines(self):
        # the transient-imbalance mechanism lets FM swap under LB == UB
        h = two_cliques()
        sides = [0, 1, 1, 0, 1, 0, 0, 1]
        _refined, cut = fm_refine(h, sides, 4, 4)
        assert cut == 1.0

    def test_never_worsens(self):
        rng = random.Random(0)
        h = Hypergraph(
            12,
            nets=[
                tuple(rng.sample(range(12), rng.randint(2, 4)))
                for _ in range(20)
            ]
            + [(i, i + 1) for i in range(11)],
        )
        sides = [rng.randint(0, 1) for _ in range(12)]
        size0 = sides.count(0)
        before = cut_capacity(h, sides)
        _refined, after = fm_refine(h, list(sides), size0, size0)
        assert after <= before

    def test_out_of_bounds_initial_rejected(self):
        h = two_cliques()
        with pytest.raises(PartitionError):
            fm_refine(h, [0] * 8, 1, 3)

    def test_result_respects_bounds(self):
        rng = random.Random(3)
        h = Hypergraph(
            20,
            nets=[(i, i + 1) for i in range(19)],
        )
        sides = [1] * 20
        for v in range(8):
            sides[v] = 0
        refined, _cut = fm_refine(h, sides, 6, 10, FMConfig(seed=1))
        size0 = refined.count(0)
        assert 6 <= size0 <= 10


class TestBipartition:
    @pytest.mark.parametrize("init", ["random", "bfs"])
    def test_finds_the_bridge(self, init):
        h = two_cliques()
        sides, cut = fm_bipartition(
            h, 4, 4, rng=random.Random(0), config=FMConfig(init=init)
        )
        assert cut == 1.0

    def test_respects_window(self):
        h = Hypergraph(10, nets=[(i, i + 1) for i in range(9)])
        sides, _cut = fm_bipartition(h, 3, 5, rng=random.Random(1))
        assert 3 <= sides.count(0) <= 5

    def test_rejects_degenerate_window(self):
        h = two_cliques()
        with pytest.raises(PartitionError):
            fm_bipartition(h, 8, 8, rng=random.Random(0))

    def test_restarts_config_validated(self):
        with pytest.raises(ValueError):
            FMConfig(restarts=0)
        with pytest.raises(ValueError):
            FMConfig(init="smart")

    def test_more_restarts_never_hurt_much(self):
        rng_nets = random.Random(5)
        h = Hypergraph(
            30,
            nets=[(i, i + 1) for i in range(29)]
            + [
                tuple(sorted(rng_nets.sample(range(30), 2)))
                for _ in range(10)
            ],
        )
        _s1, cut1 = fm_bipartition(
            h, 14, 16, rng=random.Random(2), config=FMConfig(restarts=1)
        )
        _s5, cut5 = fm_bipartition(
            h, 14, 16, rng=random.Random(2), config=FMConfig(restarts=5)
        )
        assert cut5 <= cut1 + 1e-9
