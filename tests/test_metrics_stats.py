"""Unit tests for netlist statistics and analysis helpers."""

import pytest

from repro.analysis.stats import geometric_mean, improvement, summary
from repro.hypergraph import Graph, Hypergraph
from repro.hypergraph.metrics import (
    connected_components,
    is_connected,
    netlist_stats,
)


class TestNetlistStats:
    def test_counts(self):
        h = Hypergraph(4, nets=[(0, 1), (1, 2, 3)], name="s")
        stats = netlist_stats(h)
        assert stats.name == "s"
        assert stats.num_nodes == 4
        assert stats.num_nets == 2
        assert stats.num_pins == 5
        assert stats.max_net_size == 3
        assert stats.avg_net_size == pytest.approx(2.5)
        assert stats.max_degree == 2
        assert stats.avg_degree == pytest.approx(5 / 4)
        assert stats.total_size == 4.0


class TestComponents:
    def test_connected_graph(self):
        g = Graph(3, edges=[(0, 1), (1, 2)])
        assert is_connected(g)
        assert connected_components(g) == [[0, 1, 2]]

    def test_disconnected_graph(self):
        g = Graph(5, edges=[(0, 1), (2, 3)])
        components = connected_components(g)
        assert components == [[0, 1], [2, 3], [4]]
        assert not is_connected(g)


class TestStats:
    def test_summary(self):
        s = summary([1.0, 2.0, 3.0])
        assert s["min"] == 1.0
        assert s["max"] == 3.0
        assert s["mean"] == pytest.approx(2.0)
        assert s["n"] == 3

    def test_summary_empty_rejected(self):
        with pytest.raises(ValueError):
            summary([])

    def test_improvement(self):
        assert improvement(100, 80) == pytest.approx(0.2)
        assert improvement(0, 5) == 0.0

    def test_geometric_mean(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)
        with pytest.raises(ValueError):
            geometric_mean([1.0, -1.0])
        with pytest.raises(ValueError):
            geometric_mean([])
