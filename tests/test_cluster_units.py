"""Unit tests for the cluster building blocks.

Ring (consistent hashing), placement policies, the worker registry's
death ladder, and the router journal replay — each exercised in
isolation, no sockets.  The replay tests pin the same two properties the
service journal's tests established: any record prefix replays to a
valid state, and replaying twice equals replaying once.
"""

import hashlib

import pytest

from repro.errors import ServiceError
from repro.service.cluster import (
    CapacityPolicy,
    ConsistentHashPolicy,
    HashRing,
    WorkerInfo,
    WorkerRegistry,
    make_policy,
    replay_cluster,
)


def _hash(text: str) -> str:
    return hashlib.sha256(text.encode()).hexdigest()


class TestHashRing:
    def test_empty_ring_places_nowhere(self):
        assert HashRing({}).place(_hash("x")) is None

    def test_single_worker_takes_everything(self):
        ring = HashRing({"solo": 1.0})
        for i in range(20):
            assert ring.place(_hash(f"key{i}")) == "solo"

    def test_placement_is_deterministic(self):
        ring_a = HashRing({"a": 1.0, "b": 1.0, "c": 1.0})
        ring_b = HashRing({"c": 1.0, "a": 1.0, "b": 1.0})  # order-free
        keys = [_hash(f"key{i}") for i in range(50)]
        assert [ring_a.place(k) for k in keys] == [
            ring_b.place(k) for k in keys
        ]

    def test_member_removal_only_moves_its_keys(self):
        """The consistent-hashing contract: dropping one worker moves
        only the keys it owned — everything else stays put."""
        before = HashRing({"a": 1.0, "b": 1.0, "c": 1.0})
        after = HashRing({"a": 1.0, "b": 1.0})
        for i in range(100):
            key = _hash(f"key{i}")
            owner = before.place(key)
            if owner != "c":
                assert after.place(key) == owner

    def test_exclusion_walks_clockwise(self):
        ring = HashRing({"a": 1.0, "b": 1.0})
        key = _hash("anything")
        owner = ring.place(key)
        other = ring.place(key, exclude={owner})
        assert other is not None and other != owner
        assert ring.place(key, exclude={"a", "b"}) is None

    def test_weight_steers_share(self):
        """A worker with 3x weight should own roughly 3x the arc."""
        ring = HashRing({"big": 3.0, "small": 1.0})
        owners = [ring.place(_hash(f"key{i}")) for i in range(400)]
        big_share = owners.count("big") / len(owners)
        assert 0.55 < big_share < 0.95

    def test_rejects_bad_weights(self):
        with pytest.raises(ServiceError):
            HashRing({"a": 0.0})
        with pytest.raises(ServiceError):
            HashRing({"a": -1.0})

    def test_arc_shares_sum_to_one_and_follow_weight(self):
        ring = HashRing({"big": 3.0, "small": 1.0})
        shares = ring.arc_shares()
        assert set(shares) == {"big", "small"}
        assert sum(shares.values()) == pytest.approx(1.0)
        assert shares["big"] > shares["small"]

    def test_arc_shares_of_an_empty_ring(self):
        assert HashRing({}).arc_shares() == {}


def _worker(worker_id, weight=1.0, in_flight=0, engines=()):
    return WorkerInfo(
        worker_id=worker_id,
        url=f"http://test/{worker_id}",
        weight=weight,
        in_flight=in_flight,
        engines=tuple(engines),
    )


class TestPlacementPolicies:
    def test_make_policy_registry(self):
        assert make_policy("hash").name == "hash"
        assert make_policy("capacity").name == "capacity"
        with pytest.raises(ServiceError):
            make_policy("round-robin")

    def test_hash_policy_matches_ring(self):
        workers = [_worker("a"), _worker("b", weight=2.0)]
        policy = ConsistentHashPolicy()
        ring = HashRing({"a": 1.0, "b": 2.0})
        for i in range(30):
            key = _hash(f"key{i}")
            assert policy.choose(key, workers) == ring.place(key)

    def test_hash_policy_empty(self):
        assert ConsistentHashPolicy().choose(_hash("k"), []) is None

    def test_capacity_prefers_lightest_pressure(self):
        workers = [
            _worker("busy", in_flight=4),
            _worker("idle", in_flight=0),
        ]
        assert CapacityPolicy().choose(_hash("k"), workers) == "idle"

    def test_capacity_honours_weight(self):
        # 4 in flight at weight 4 (pressure 1.25) beats 1 at weight 1
        # (pressure 2.0): bin-packing by declared capacity, not raw load.
        workers = [
            _worker("heavy", weight=4.0, in_flight=4),
            _worker("light", weight=1.0, in_flight=1),
        ]
        assert CapacityPolicy().choose(_hash("k"), workers) == "heavy"

    def test_capacity_ties_break_by_hash(self):
        workers = [_worker("a"), _worker("b")]
        policy = CapacityPolicy()
        ring = HashRing({"a": 1.0, "b": 1.0})
        for i in range(20):
            key = _hash(f"key{i}")
            assert policy.choose(key, workers) == ring.place(key)


class TestWorkerRegistry:
    def test_register_heartbeat_roundtrip(self):
        registry = WorkerRegistry(heartbeat_interval=1.0)
        registry.register(_worker("w1"))
        assert registry.heartbeat("w1", in_flight=3, cached_keys=["k" * 64])
        worker = registry.get("w1")
        assert worker.in_flight == 3
        assert "k" * 64 in worker.cached_keys
        assert registry.state_counts()["alive"] == 1

    def test_unknown_and_dead_heartbeats_refused(self):
        registry = WorkerRegistry()
        assert not registry.heartbeat("ghost")
        registry.register(_worker("w1"))
        registry.mark_dead("w1")
        assert not registry.heartbeat("w1")

    def test_rejoin_after_death_resurrects(self):
        registry = WorkerRegistry()
        registry.register(_worker("w1"))
        registry.mark_dead("w1")
        registry.register(_worker("w1"))
        assert registry.get("w1").state == "alive"
        assert registry.heartbeat("w1")

    def test_rejoin_keeps_original_join_time(self):
        registry = WorkerRegistry()
        first = registry.register(_worker("w1"))
        joined_at = first.joined_at
        second = registry.register(_worker("w1"))
        assert second.joined_at == joined_at

    def test_death_ladder(self):
        """alive -> suspect on the first failed probe, dead at the
        probe-retry budget; a heartbeat resets the ladder."""
        registry = WorkerRegistry(probe_retries=2)
        registry.register(_worker("w1"))
        assert registry.probe_failed("w1") == "suspect"
        assert registry.heartbeat("w1")  # recovers
        assert registry.get("w1").state == "alive"
        assert registry.get("w1").probe_failures == 0
        assert registry.probe_failed("w1") == "suspect"
        assert registry.probe_failed("w1") == "dead"
        assert registry.state_counts()["dead"] == 1

    def test_suspect_excluded_from_placement(self):
        registry = WorkerRegistry()
        registry.register(_worker("w1"))
        registry.register(_worker("w2"))
        registry.probe_failed("w1")
        assert [w.worker_id for w in registry.alive()] == ["w2"]

    def test_engine_filter(self):
        registry = WorkerRegistry()
        registry.register(_worker("any"))  # empty engines = everything
        registry.register(_worker("scipy-only", engines=("scipy",)))
        assert {w.worker_id for w in registry.alive("native")} == {"any"}
        assert {w.worker_id for w in registry.alive("scipy")} == {
            "any",
            "scipy-only",
        }

    def test_overdue_budget(self):
        registry = WorkerRegistry(heartbeat_interval=1.0, max_missed=3)
        worker = registry.register(_worker("w1"))
        now = worker.last_heartbeat
        assert registry.overdue(now + 2.9) == []
        assert [w.worker_id for w in registry.overdue(now + 3.1)] == ["w1"]
        registry.mark_dead("w1")
        assert registry.overdue(now + 10.0) == []  # dead is not probed

    def test_cache_index(self):
        registry = WorkerRegistry()
        key = "a" * 64
        registry.register(_worker("w1"))
        registry.heartbeat("w1", cached_keys=[key])
        assert [w.worker_id for w in registry.cache_owners(key)] == ["w1"]
        registry.forget_cached("w1", key)
        assert registry.cache_owners(key) == []
        registry.heartbeat("w1", cached_keys=[key])
        registry.mark_dead("w1")
        assert registry.cache_owners(key) == []  # dead owners don't count

    def test_constructor_validation(self):
        with pytest.raises(ServiceError):
            WorkerRegistry(heartbeat_interval=0)
        with pytest.raises(ServiceError):
            WorkerRegistry(max_missed=0)
        with pytest.raises(ServiceError):
            WorkerRegistry(probe_retries=0)
        with pytest.raises(ServiceError):
            WorkerRegistry().register(_worker(""))


def _records():
    spec = {"netlist": {}, "hierarchy": {}, "config": {}}
    return [
        {
            "type": "placed",
            "job_id": "j1",
            "spec_hash": "h1",
            "spec": spec,
            "worker": "w1",
            "submitted_at": 1.0,
        },
        {"type": "forwarded", "job_id": "j1", "worker": "w1",
         "worker_job_id": "h1-0001"},
        {"type": "rerouted", "job_id": "j1", "worker": "w2"},
        {"type": "forwarded", "job_id": "j1", "worker": "w2",
         "worker_job_id": "h1-0007"},
        {"type": "resolved", "job_id": "j1", "state": "done"},
        {
            "type": "placed",
            "job_id": "j2",
            "spec_hash": "h2",
            "spec": spec,
            "worker": "w1",
        },
        {"type": "forwarded", "job_id": "j2", "worker_job_id": "h2-0002"},
    ]


class TestClusterReplay:
    def test_full_replay(self):
        state = replay_cluster(_records())
        assert state.skipped == 0
        j1 = state.jobs["j1"]
        assert j1.state == "done"
        assert j1.worker == "w2"
        assert j1.worker_job_id == "h1-0007"
        assert j1.reroutes == 1
        j2 = state.jobs["j2"]
        assert j2.state == "placed"
        assert j2.worker == "w1"
        assert j2.worker_job_id == "h2-0002"
        assert [job.job_id for job in state.open_jobs()] == ["j2"]

    def test_every_prefix_is_valid(self):
        """Property: replay never raises on any crash prefix, and each
        prefix yields a structurally sound table."""
        records = _records()
        for cut in range(len(records) + 1):
            state = replay_cluster(records[:cut])
            for job in state.jobs.values():
                assert job.state in ("placed", "done", "failed", "cancelled")
                assert isinstance(job.reroutes, int)

    def test_replay_is_idempotent(self):
        once = replay_cluster(_records())
        twice = replay_cluster(_records() + _records())
        # The duplicated prefix only adds skips, never new state.
        assert {j.job_id: j.state for j in once.in_order()} == {
            j.job_id: j.state for j in twice.in_order()
        }
        assert twice.skipped > 0

    def test_garbage_records_are_counted_not_raised(self):
        garbage = [
            {},
            {"type": "placed"},  # no job id
            {"type": "resolved", "job_id": "ghost", "state": "done"},
            {"type": "nonsense", "job_id": "j1"},
            {"type": "placed", "job_id": "j3", "spec_hash": "h3",
             "spec": "not-a-dict", "worker": "w1"},
            {"type": "resolved", "job_id": "j1", "state": "exploded"},
        ]
        state = replay_cluster(_records() + garbage)
        assert state.skipped == len(garbage)
        assert state.jobs["j1"].state == "done"

    def test_resolved_is_terminal_once(self):
        records = _records() + [
            {"type": "resolved", "job_id": "j1", "state": "failed",
             "error": "late duplicate"},
            {"type": "rerouted", "job_id": "j1", "worker": "w9"},
        ]
        state = replay_cluster(records)
        assert state.jobs["j1"].state == "done"
        assert state.jobs["j1"].error is None
        assert state.jobs["j1"].worker == "w2"
        assert state.skipped == 2
