"""ServiceClient behaviour against a deliberately misbehaving server.

A raw-socket stub follows a per-connection script — close the socket
before answering (FIN: ``RemoteDisconnected``), slam it with an RST
(``ConnectionResetError``), truncate a response mid-body, or answer
properly — so every rung of the client's reset-retry ladder is
exercised against a real TCP peer rather than monkeypatched exceptions.

The contract under test (see ``_RETRYABLE`` in ``service/client.py``):
idempotent GETs retry resets with the FaultTolerance backoff budget;
POSTs never retry; refused connections fail fast without burning the
budget.
"""

import socket
import struct
import threading

import pytest

from repro.core.faults import FaultTolerance
from repro.service.client import ServiceClient, ServiceClientError

_OK_BODY = b'{"status": "ok"}'
_OK_RESPONSE = (
    b"HTTP/1.0 200 OK\r\n"
    b"Content-Type: application/json\r\n"
    b"Content-Length: " + str(len(_OK_BODY)).encode() + b"\r\n"
    b"\r\n" + _OK_BODY
)


class FlakyServer:
    """One scripted misbehaviour per accepted connection.

    ``script`` entries: ``"fin"`` reads the request then closes cleanly
    without responding; ``"rst"`` reads then aborts the connection with
    an RST; ``"truncate"`` sends headers promising a long body but
    closes after a few bytes; ``"ok"`` answers properly.  Connections
    beyond the script get ``"ok"``.
    """

    def __init__(self, script):
        self.script = list(script)
        self.connections = 0
        self._closing = False
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind(("127.0.0.1", 0))
        self._listener.listen(8)
        self.url = "http://127.0.0.1:%d" % self._listener.getsockname()[1]
        self._thread = threading.Thread(target=self._serve, daemon=True)
        self._thread.start()

    def _serve(self):
        while True:
            try:
                conn, _addr = self._listener.accept()
            except OSError:
                return  # listener closed: shut down
            if self._closing:
                conn.close()
                return
            index = self.connections
            self.connections += 1
            behaviour = (
                self.script[index] if index < len(self.script) else "ok"
            )
            try:
                self._handle(conn, behaviour)
            finally:
                conn.close()

    @staticmethod
    def _handle(conn, behaviour):
        conn.settimeout(5.0)
        request = b""
        while b"\r\n\r\n" not in request:
            chunk = conn.recv(4096)
            if not chunk:
                return
            request += chunk
        if behaviour == "fin":
            return  # close() in _serve sends a clean FIN, no response
        if behaviour == "rst":
            # SO_LINGER with zero timeout turns close() into an RST.
            conn.setsockopt(
                socket.SOL_SOCKET,
                socket.SO_LINGER,
                struct.pack("ii", 1, 0),
            )
            return
        if behaviour == "truncate":
            conn.sendall(
                b"HTTP/1.0 200 OK\r\n"
                b"Content-Type: application/json\r\n"
                b"Content-Length: 4096\r\n"
                b"\r\n"
                b'{"st'
            )
            return
        conn.sendall(_OK_RESPONSE)

    def close(self):
        # A sentinel connection unblocks the accept() the serve thread
        # is parked in; plain listener.close() would not wake it.
        self._closing = True
        try:
            wake = socket.create_connection(
                self._listener.getsockname(), timeout=1.0
            )
            wake.close()
        except OSError:
            pass
        self._listener.close()
        self._thread.join(timeout=5.0)


@pytest.fixture
def flaky():
    servers = []

    def build(script):
        server = FlakyServer(script)
        servers.append(server)
        return server

    yield build
    for server in servers:
        server.close()


def _client(url, retries=2):
    # Near-zero backoff keeps the retry waves fast under test.
    return ServiceClient(
        url,
        timeout=5.0,
        tolerance=FaultTolerance(task_retries=retries, backoff_base=0.001),
    )


class TestIdempotentRetry:
    def test_get_survives_a_clean_half_close(self, flaky):
        server = flaky(["fin"])
        assert _client(server.url).healthz() == {"status": "ok"}
        assert server.connections == 2

    def test_get_survives_a_reset(self, flaky):
        server = flaky(["rst"])
        assert _client(server.url).healthz() == {"status": "ok"}
        assert server.connections == 2

    def test_get_survives_mixed_failures_up_to_budget(self, flaky):
        server = flaky(["rst", "fin"])
        assert _client(server.url).status("j1") == {"status": "ok"}
        assert server.connections == 3

    def test_budget_exhaustion_reports_attempts(self, flaky):
        server = flaky(["fin", "fin", "fin", "fin"])
        with pytest.raises(ServiceClientError) as exc_info:
            _client(server.url, retries=2).healthz()
        assert exc_info.value.status == 0
        assert "after 3 attempts" in str(exc_info.value)
        assert server.connections == 3  # 1 try + 2 retries, then give up

    def test_zero_retry_tolerance_fails_on_first_reset(self, flaky):
        server = flaky(["rst"])
        with pytest.raises(ServiceClientError) as exc_info:
            _client(server.url, retries=0).healthz()
        assert exc_info.value.status == 0
        assert server.connections == 1


class TestNonIdempotentNeverRetries:
    def test_post_fails_on_half_close_without_retry(self, flaky):
        """A duplicate submission is worse than an error: the POST must
        surface the reset even though the next attempt would succeed."""
        server = flaky(["fin"])
        with pytest.raises(ServiceClientError) as exc_info:
            _client(server.url).submit({"netlist": {}})
        assert exc_info.value.status == 0
        assert server.connections == 1

    def test_post_fails_on_reset_without_retry(self, flaky):
        server = flaky(["rst"])
        with pytest.raises(ServiceClientError) as exc_info:
            _client(server.url).cancel("j1")
        assert exc_info.value.status == 0
        assert server.connections == 1


class TestOtherTransportEdges:
    def test_truncated_body_is_not_silently_retried_forever(self, flaky):
        """A short read inside a framed response maps to a client error
        (status 0) rather than looping: IncompleteRead is not in
        _RETRYABLE, so one bad connection is one failure."""
        server = flaky(["truncate", "truncate", "truncate"])
        with pytest.raises(ServiceClientError) as exc_info:
            _client(server.url).healthz()
        assert exc_info.value.status == 0
        assert server.connections == 1

    def test_refused_connection_fails_fast(self):
        """ConnectionRefusedError is deliberately outside _RETRYABLE: a
        down server should not burn the backoff budget."""
        probe = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()  # nothing listens here any more
        client = _client(f"http://127.0.0.1:{port}")
        with pytest.raises(ServiceClientError) as exc_info:
            client.healthz()
        assert exc_info.value.status == 0
        assert "cannot reach service" in str(exc_info.value)
