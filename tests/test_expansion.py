"""Unit tests for net models (clique / cycle / star expansions)."""

import pytest

from repro.errors import HypergraphError
from repro.hypergraph import (
    Hypergraph,
    clique_expansion,
    cycle_expansion,
    star_expansion,
    to_graph,
)


def netlist():
    return Hypergraph(5, nets=[(0, 1), (1, 2, 3), (0, 2, 3, 4)])


class TestClique:
    def test_edge_count(self):
        g = clique_expansion(netlist())
        # 1 + 3 + 6 pairwise edges, some merged: (2,3) appears twice
        pairs = set(g.edges())
        assert (2, 3) in pairs
        assert g.num_edges == 1 + 3 + 6 - 1  # (2,3) merged

    def test_capacity_normalisation(self):
        h = Hypergraph(3, nets=[(0, 1, 2)], net_capacities=[4.0])
        g = clique_expansion(h)
        # each pair gets c/(k-1) = 4/2 = 2
        assert all(g.capacity(e) == pytest.approx(2.0) for e in range(3))

    def test_two_pin_net_keeps_capacity(self):
        h = Hypergraph(2, nets=[(0, 1)], net_capacities=[7.0])
        g = clique_expansion(h)
        assert g.capacity(0) == 7.0

    def test_any_bipartition_of_net_costs_at_least_capacity(self):
        # The c/(k-1) normalisation guarantees cutting a clique-expanded
        # net costs >= c(e) in graph capacity.
        h = Hypergraph(4, nets=[(0, 1, 2, 3)], net_capacities=[3.0])
        g = clique_expansion(h)
        for side in ([0], [0, 1], [0, 2], [1, 3]):
            inside = set(side)
            cut = sum(
                g.capacity(e)
                for e, (u, v) in enumerate(g.edges())
                if (u in inside) != (v in inside)
            )
            assert cut >= 3.0 - 1e-9

    def test_large_net_falls_back_to_cycle(self):
        h = Hypergraph(12, nets=[tuple(range(12))])
        g = clique_expansion(h, clique_threshold=8)
        assert g.num_edges == 12  # cycle over 12 pins

    def test_preserves_node_set_and_sizes(self):
        h = Hypergraph(3, nets=[(0, 1, 2)], node_sizes=[1.0, 2.0, 3.0])
        g = clique_expansion(h)
        assert g.num_nodes == 3
        assert g.node_size(2) == 3.0


class TestCycle:
    def test_two_pin(self):
        g = cycle_expansion(Hypergraph(2, nets=[(0, 1)]))
        assert g.num_edges == 1

    def test_cycle_edge_count(self):
        h = Hypergraph(5, nets=[(0, 1, 2, 3, 4)])
        g = cycle_expansion(h)
        assert g.num_edges == 5
        assert all(g.degree(v) == 2 for v in g.nodes())


class TestStar:
    def test_adds_centers(self):
        h = netlist()
        g, centers = star_expansion(h)
        assert g.num_nodes == h.num_nodes + h.num_nets
        assert len(centers) == h.num_nets
        # spokes: one per pin
        assert g.num_edges == h.num_pins

    def test_center_degree_equals_net_size(self):
        h = netlist()
        g, centers = star_expansion(h)
        for net_id, center in enumerate(centers):
            assert g.degree(center) == len(h.net(net_id))


class TestDispatch:
    def test_to_graph_models(self):
        assert to_graph(netlist(), "clique").num_nodes == 5
        assert to_graph(netlist(), "cycle").num_nodes == 5

    def test_unknown_model(self):
        with pytest.raises(HypergraphError):
            to_graph(netlist(), "star")
