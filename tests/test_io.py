"""Unit tests for netlist I/O (hMETIS and JSON)."""

import pytest

from repro.errors import HypergraphError
from repro.hypergraph import Hypergraph
from repro.hypergraph.io import read_hgr, read_json, write_hgr, write_json


def weighted_netlist():
    return Hypergraph(
        4,
        nets=[(0, 1, 2), (2, 3)],
        node_sizes=[1.0, 2.0, 1.0, 3.0],
        net_capacities=[2.0, 1.0],
        name="weighted",
    )


class TestHGRRoundTrip:
    def test_unit_weights(self, tmp_path):
        h = Hypergraph(3, nets=[(0, 1), (1, 2)], name="plain")
        path = tmp_path / "plain.hgr"
        write_hgr(h, path)
        back = read_hgr(path)
        assert back.num_nodes == 3
        assert back.nets() == h.nets()
        assert all(back.net_capacity(e) == 1.0 for e in range(2))

    def test_full_weights(self, tmp_path):
        h = weighted_netlist()
        path = tmp_path / "weighted.hgr"
        write_hgr(h, path)
        back = read_hgr(path)
        assert back.nets() == h.nets()
        assert back.net_capacities() == h.net_capacities()
        assert back.node_sizes() == h.node_sizes()

    def test_header_format_code(self, tmp_path):
        h = weighted_netlist()
        path = tmp_path / "w.hgr"
        write_hgr(h, path)
        header = path.read_text().splitlines()[0].split()
        assert header == ["2", "4", "11"]

    def test_net_weights_only(self, tmp_path):
        h = Hypergraph(3, nets=[(0, 1), (1, 2)], net_capacities=[2.0, 3.0])
        path = tmp_path / "nw.hgr"
        write_hgr(h, path)
        header = path.read_text().splitlines()[0].split()
        assert header[2] == "1"
        back = read_hgr(path)
        assert back.net_capacity(1) == 3.0

    def test_comments_ignored(self, tmp_path):
        path = tmp_path / "c.hgr"
        path.write_text("% comment\n2 3\n1 2\n% another\n2 3\n")
        back = read_hgr(path)
        assert back.num_nets == 2
        assert back.net(0) == (0, 1)

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.hgr"
        path.write_text("\n")
        with pytest.raises(HypergraphError):
            read_hgr(path)

    def test_truncated_file_rejected(self, tmp_path):
        path = tmp_path / "short.hgr"
        path.write_text("3 4\n1 2\n")
        with pytest.raises(HypergraphError):
            read_hgr(path)

    def test_name_defaults_to_stem(self, tmp_path):
        h = Hypergraph(2, nets=[(0, 1)])
        path = tmp_path / "mycircuit.hgr"
        write_hgr(h, path)
        assert read_hgr(path).name == "mycircuit"


class TestJSONRoundTrip:
    def test_full_round_trip(self, tmp_path):
        h = weighted_netlist()
        path = tmp_path / "h.json"
        write_json(h, path)
        back = read_json(path)
        assert back.name == "weighted"
        assert back.nets() == h.nets()
        assert back.node_sizes() == h.node_sizes()
        assert back.net_capacities() == h.net_capacities()
        assert back.node_name(0) == h.node_name(0)

    def test_missing_field_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"num_nodes": 2}')
        with pytest.raises(HypergraphError):
            read_json(path)
