"""The network fault proxy: plan parsing, determinism, live sockets.

The proxy is the instrument behind the cluster partition drills, so its
own behaviour must be beyond suspicion: a plan must parse the way the
docs say, the seeded draws must replay, and the socket-level faults
must actually bite live traffic (and be *counted* when they do).
"""

from __future__ import annotations

import socket
import threading
import time

import pytest

from repro.core.faults import FaultPlanError
from repro.core.perf import PerfCounters
from repro.testing import NET_KINDS, FaultProxy, NetFaultPlan, NetFaultSpec


class TestPlanParsing:
    def test_single_spec_round_trip(self):
        plan = NetFaultPlan.parse("partition:router->w1@after=2s,duration=10s")
        (spec,) = plan.specs
        assert spec.kind == "partition"
        assert spec.link == "router->w1"
        assert spec.after == 2.0
        assert spec.duration == 10.0
        assert plan.describe() == "partition:router->w1@after=2,duration=10"

    def test_multi_spec_plan(self):
        plan = NetFaultPlan.parse(
            "latency:client->router@delay=0.5;drop:router->w1@p=0.25"
        )
        assert [s.kind for s in plan.specs] == ["latency", "drop"]
        assert plan.specs[0].delay == 0.5
        assert plan.specs[1].p == 0.25

    def test_unknown_kind_rejected(self):
        with pytest.raises(FaultPlanError, match="unknown net fault kind"):
            NetFaultPlan.parse("gremlin:router->w1")

    def test_unknown_condition_rejected(self):
        with pytest.raises(FaultPlanError, match="unknown net fault condition"):
            NetFaultPlan.parse("drop:link@volume=11")

    def test_bad_value_rejected(self):
        with pytest.raises(FaultPlanError, match="bad value"):
            NetFaultPlan.parse("latency:link@delay=soon")

    def test_probability_bounds(self):
        with pytest.raises(FaultPlanError, match="p must be"):
            NetFaultSpec(kind="drop", link="l", p=0.0)
        with pytest.raises(FaultPlanError, match="p must be"):
            NetFaultSpec(kind="drop", link="l", p=1.5)

    def test_arming_window(self):
        spec = NetFaultSpec(kind="drop", link="l", after=2.0, duration=3.0)
        assert not spec.active(1.9)
        assert spec.active(2.0)
        assert spec.active(4.9)
        assert not spec.active(5.0)

    def test_forever_fault_never_expires(self):
        spec = NetFaultSpec(kind="drop", link="l")
        assert spec.active(0.0) and spec.active(1e9)


class TestDeterministicDraws:
    def test_same_seed_same_picks(self):
        plan_a = NetFaultPlan.parse("drop:l@p=0.5", seed=7)
        plan_b = NetFaultPlan.parse("drop:l@p=0.5", seed=7)
        picks_a = [bool(plan_a.draw("l", 0.0, n)) for n in range(64)]
        picks_b = [bool(plan_b.draw("l", 0.0, n)) for n in range(64)]
        assert picks_a == picks_b
        # A p=0.5 draw over 64 connections should not be all-or-nothing.
        assert 0 < sum(picks_a) < 64

    def test_different_seed_differs(self):
        picks = {
            seed: tuple(
                bool(NetFaultPlan.parse("drop:l@p=0.5", seed=seed).draw(
                    "l", 0.0, n
                ))
                for n in range(64)
            )
            for seed in (1, 2)
        }
        assert picks[1] != picks[2]

    def test_wildcard_link_matches_everything(self):
        plan = NetFaultPlan.parse("drop:*")
        assert plan.draw("router->w1", 0.0, 0)
        assert plan.draw("anything", 0.0, 0)

    def test_wrong_link_never_fires(self):
        plan = NetFaultPlan.parse("drop:router->w1")
        assert plan.draw("router->w2", 0.0, 0) == []


# ----------------------------------------------------------------------
# Live-socket proxy behaviour against a tiny echo upstream
# ----------------------------------------------------------------------
class _EchoUpstream:
    """Accepts one chunk per connection and answers ``ack:<chunk>``."""

    def __init__(self):
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.bind(("127.0.0.1", 0))
        self._listener.listen(8)
        self.port = self._listener.getsockname()[1]
        self._closing = False
        self._thread = threading.Thread(target=self._serve, daemon=True)
        self._thread.start()

    def _serve(self):
        while not self._closing:
            try:
                conn, _ = self._listener.accept()
            except OSError:
                return
            try:
                data = conn.recv(65536)
                if data:
                    conn.sendall(b"ack:" + data)
            except OSError:
                pass
            finally:
                conn.close()

    def close(self):
        self._closing = True
        try:
            self._listener.close()
        except OSError:
            pass


@pytest.fixture
def upstream():
    server = _EchoUpstream()
    yield server
    server.close()


def _exchange(port, payload=b"ping", timeout=5.0):
    with socket.create_connection(("127.0.0.1", port), timeout=timeout) as s:
        s.sendall(payload)
        s.settimeout(timeout)
        return s.recv(65536)


class TestFaultProxy:
    def test_transparent_relay_without_plan(self, upstream):
        with FaultProxy("127.0.0.1", upstream.port, link="t") as proxy:
            assert _exchange(proxy.port) == b"ack:ping"
            assert proxy.injected == []

    def test_partition_severs_and_counts(self, upstream):
        counters = PerfCounters()
        plan = NetFaultPlan.parse("partition:t")
        with FaultProxy(
            "127.0.0.1", upstream.port, link="t", plan=plan,
            counters=counters,
        ) as proxy:
            with pytest.raises(OSError):
                data = _exchange(proxy.port, timeout=2.0)
                if not data:  # a clean FIN surfaces as empty bytes
                    raise ConnectionResetError("severed")
            assert proxy.injected == ["partition:t"]
            assert counters.netfaults_injected == 1

    def test_partition_arms_late(self, upstream):
        # Not yet armed: traffic flows; the injected ledger stays empty.
        plan = NetFaultPlan.parse("partition:t@after=60s")
        with FaultProxy(
            "127.0.0.1", upstream.port, link="t", plan=plan
        ) as proxy:
            assert _exchange(proxy.port) == b"ack:ping"
            assert proxy.injected == []

    def test_latency_holds_chunks(self, upstream):
        plan = NetFaultPlan.parse("latency:t@delay=0.3")
        with FaultProxy(
            "127.0.0.1", upstream.port, link="t", plan=plan
        ) as proxy:
            started = time.monotonic()
            assert _exchange(proxy.port) == b"ack:ping"
            assert time.monotonic() - started >= 0.3
            assert "latency:t@delay=0.3" in proxy.injected

    def test_drop_blackholes(self, upstream):
        plan = NetFaultPlan.parse("drop:t")
        with FaultProxy(
            "127.0.0.1", upstream.port, link="t", plan=plan
        ) as proxy:
            with socket.create_connection(
                ("127.0.0.1", proxy.port), timeout=2.0
            ) as s:
                s.sendall(b"ping")
                s.settimeout(0.5)
                with pytest.raises(OSError):
                    data = s.recv(65536)
                    if not data:
                        raise ConnectionResetError("closed, nothing served")
            assert proxy.injected == ["drop:t"]

    def test_kind_catalogue_is_pinned(self):
        assert NET_KINDS == (
            "latency", "drop", "half_close", "partition", "reorder"
        )
