"""Unit tests for the Kernighan-Lin pair-swap bipartitioner."""

import random

import pytest

from repro.errors import PartitionError
from repro.hypergraph import Hypergraph
from repro.partitioning.fm import cut_capacity
from repro.partitioning.kl import KLConfig, kl_bipartition


def two_cliques():
    nets = []
    for base in (0, 4):
        for i in range(4):
            for j in range(i + 1, 4):
                nets.append((base + i, base + j))
    nets.append((0, 4))
    return Hypergraph(8, nets=nets)


class TestKL:
    def test_finds_bridge_cut(self):
        h = two_cliques()
        # worst-case interleaved start
        sides, cut = kl_bipartition(h, sides=[0, 1, 0, 1, 0, 1, 0, 1])
        assert cut == 1.0
        assert sorted(v for v in range(8) if sides[v] == 0) in (
            [0, 1, 2, 3],
            [4, 5, 6, 7],
        )

    def test_preserves_balance_exactly(self):
        h = two_cliques()
        start = [0, 1, 0, 1, 0, 1, 0, 1]
        sides, _cut = kl_bipartition(h, sides=list(start))
        assert sides.count(0) == start.count(0)

    def test_random_start_generated(self):
        h = two_cliques()
        sides, cut = kl_bipartition(h, rng=random.Random(0))
        assert sides.count(0) == 4
        assert cut <= cut_capacity(h, sides) + 1e-9

    def test_never_worsens(self):
        rng = random.Random(9)
        nets = [(i, i + 1) for i in range(19)]
        nets += [tuple(sorted(rng.sample(range(20), 3))) for _ in range(8)]
        h = Hypergraph(20, nets=nets)
        start = [v % 2 for v in range(20)]
        before = cut_capacity(h, start)
        _sides, after = kl_bipartition(h, sides=list(start))
        assert after <= before + 1e-9

    def test_invalid_sides_rejected(self):
        with pytest.raises(PartitionError):
            kl_bipartition(two_cliques(), sides=[0, 1, 2, 0, 1, 0, 1, 0])

    def test_single_node_rejected(self):
        with pytest.raises(PartitionError):
            kl_bipartition(Hypergraph(2, nets=[(0, 1)]).subhypergraph([0])[0])

    def test_max_passes_config(self):
        h = two_cliques()
        sides, cut = kl_bipartition(
            h, sides=[0, 1, 0, 1, 0, 1, 0, 1], config=KLConfig(max_passes=1)
        )
        assert cut <= 9  # one pass already improves the interleaved start
