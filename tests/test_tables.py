"""Unit tests for table rendering."""

import pytest

from repro.analysis.tables import Table, format_table


class TestTable:
    def test_render_alignment(self):
        table = Table("T", ["name", "value"])
        table.add_row("a", 1)
        table.add_row("long-name", 23456)
        text = table.render()
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1] and "value" in lines[1]
        assert set(lines[2]) <= {"-", " "}
        # all data lines equal width
        assert len(lines[3]) == len(lines[4])

    def test_row_arity_checked(self):
        table = Table("T", ["a", "b"])
        with pytest.raises(ValueError):
            table.add_row(1)

    def test_float_formatting(self):
        text = format_table("T", ["x"], [[1.0], [1.25], [float("nan")]])
        lines = text.splitlines()
        assert lines[3].strip() == "1"
        assert lines[4].strip() == "1.25"
        assert lines[5].strip() == "-"

    def test_strings_pass_through(self):
        text = format_table("T", ["x"], [["12.3%"]])
        assert "12.3%" in text
