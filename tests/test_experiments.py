"""Integration tests for the experiment drivers (at reduced scale)."""

import pytest

from repro.analysis.experiments import (
    ExperimentConfig,
    run_table1,
    run_table2,
    run_table3,
    table2_to_table,
    table3_to_table,
)
from repro.core.flow_htp import FlowHTPConfig
from repro.core.spreading_metric import SpreadingMetricConfig
from repro.partitioning.htp_fm import HTPFMConfig


@pytest.fixture(scope="module")
def quick_config():
    """A small, fast configuration: one tiny circuit."""
    return ExperimentConfig(
        scale=0.12,
        circuits=("c1355",),
        flow=FlowHTPConfig(
            iterations=1,
            constructions_per_metric=2,
            seed=0,
            metric=SpreadingMetricConfig(alpha=0.5, delta=0.05, seed=0),
        ),
        improve=HTPFMConfig(max_passes=2),
    )


class TestTable1:
    def test_columns_and_rows(self, quick_config):
        table = run_table1(quick_config)
        assert len(table.rows) == 1
        assert table.rows[0][0] == "c1355"
        assert table.rows[0][4] == 546  # paper count column

    def test_full_config_covers_all_circuits(self):
        table = run_table1(ExperimentConfig(scale=0.1))
        assert [row[0] for row in table.rows] == [
            "c1355",
            "c2670",
            "c3540",
            "c6288",
            "c7552",
        ]


class TestTable2And3:
    def test_pipeline(self, quick_config):
        store = {}
        rows = run_table2(quick_config, collect_partitions=store)
        assert len(rows) == 1
        row = rows[0]
        assert row.flow_cost > 0
        assert row.gfm_cost > 0
        assert row.rfm_cost > 0
        assert ("c1355", "FLOW") in store

        rows3 = run_table3(quick_config, partitions=store)
        assert len(rows3) == 1
        improved = rows3[0]
        assert improved.flow_plus_cost <= row.flow_cost + 1e-9
        assert improved.gfm_plus_cost <= row.gfm_cost + 1e-9
        assert improved.rfm_plus_cost <= row.rfm_cost + 1e-9

    def test_renderers(self, quick_config):
        store = {}
        rows = run_table2(quick_config, collect_partitions=store)
        text2 = table2_to_table(rows).render()
        assert "FLOW cost" in text2
        rows3 = run_table3(quick_config, partitions=store)
        text3 = table3_to_table(rows3).render()
        assert "FLOW+ cost" in text3
        assert "%" in text3

    def test_table3_recomputes_without_store(self, quick_config):
        rows3 = run_table3(quick_config)
        assert len(rows3) == 1
