"""Unit tests for the spreading-constraint oracle."""

import numpy as np
import pytest

from repro.core.constraints import SpreadingOracle
from repro.errors import InfeasibleError
from repro.htp.cost import induced_metric
from repro.htp.hierarchy import HierarchySpec, figure2_hierarchy
from repro.hypergraph import Graph
from repro.hypergraph.generators import figure2_graph


@pytest.fixture
def fig2_oracle(fig2_graph, fig2_spec):
    return SpreadingOracle(fig2_graph, fig2_spec)


class TestBasics:
    def test_zero_metric_is_violated(self, fig2_oracle):
        fig2_oracle.set_lengths(np.zeros(30))
        violation = fig2_oracle.violation_for(0)
        assert violation is not None
        assert violation.k == 5  # first k with cum size > C_0 = 4
        assert violation.lhs == pytest.approx(0.0, abs=1e-10)
        assert violation.rhs == pytest.approx(2.0)

    def test_generous_metric_is_feasible(self, fig2_oracle):
        fig2_oracle.set_lengths(np.full(30, 100.0))
        assert fig2_oracle.is_feasible()

    def test_induced_optimal_metric_is_feasible(
        self, fig2_graph, fig2_spec, fig2_hypergraph, fig2_optimal_partition
    ):
        # Lemma 1: d(e) = cost(e)/c(e) from a valid partition satisfies (P1).
        metric = induced_metric(
            fig2_hypergraph, fig2_optimal_partition, fig2_spec
        )
        oracle = SpreadingOracle(fig2_graph, fig2_spec)
        oracle.set_lengths(np.array(metric))
        assert oracle.is_feasible()

    def test_slightly_shrunk_induced_metric_is_infeasible(
        self, fig2_graph, fig2_spec, fig2_hypergraph, fig2_optimal_partition
    ):
        # Figure 2's constraints are tight; scaling down must violate.
        metric = np.array(
            induced_metric(fig2_hypergraph, fig2_optimal_partition, fig2_spec)
        )
        oracle = SpreadingOracle(fig2_graph, fig2_spec, tol=1e-9)
        oracle.set_lengths(metric * 0.9)
        assert not oracle.is_feasible()

    def test_oversized_node_rejected(self):
        g = Graph(3, edges=[(0, 1), (1, 2)], node_sizes=[10.0, 1.0, 1.0])
        spec = HierarchySpec((4, 12), (2,), (1.0,))
        with pytest.raises(InfeasibleError):
            SpreadingOracle(g, spec)

    def test_wrong_lengths_shape_rejected(self, fig2_oracle):
        with pytest.raises(ValueError):
            fig2_oracle.set_lengths(np.zeros(5))


class TestEnginesAgree:
    def test_first_violation_same_k(self, fig2_graph, fig2_spec):
        rng = np.random.RandomState(3)
        lengths = rng.uniform(0.01, 0.5, size=30)
        fast = SpreadingOracle(fig2_graph, fig2_spec, engine="scipy")
        slow = SpreadingOracle(fig2_graph, fig2_spec, engine="python")
        fast.set_lengths(lengths)
        slow.set_lengths(lengths)
        for v in range(16):
            fv = fast.violation_for(v, mode="first")
            sv = slow.violation_for(v, mode="first")
            assert (fv is None) == (sv is None)
            if fv is not None:
                assert fv.k == sv.k
                assert fv.lhs == pytest.approx(sv.lhs, rel=1e-6)
                assert fv.rhs == pytest.approx(sv.rhs, rel=1e-6)

    def test_feasibility_agrees_on_random_metrics(
        self, fig2_graph, fig2_spec
    ):
        for seed in range(5):
            rng = np.random.RandomState(seed)
            lengths = rng.uniform(0.0, 3.0, size=30)
            fast = SpreadingOracle(fig2_graph, fig2_spec, engine="scipy")
            slow = SpreadingOracle(fig2_graph, fig2_spec, engine="python")
            fast.set_lengths(lengths)
            slow.set_lengths(lengths)
            assert fast.is_feasible() == slow.is_feasible()


class TestTreeCutCoefficients:
    def test_identity_with_lhs(self, fig2_graph, fig2_spec):
        # sum_e d(e) * delta(S, e) must equal the violation's lhs
        rng = np.random.RandomState(11)
        lengths = rng.uniform(0.01, 0.2, size=30)
        oracle = SpreadingOracle(fig2_graph, fig2_spec)
        oracle.set_lengths(lengths)
        for v in range(16):
            violation = oracle.violation_for(v, mode="max")
            if violation is None:
                continue
            coeffs = oracle.tree_cut_coefficients(violation)
            value = sum(lengths[e] * c for e, c in coeffs)
            assert value == pytest.approx(violation.lhs, rel=1e-6)

    def test_coefficients_bounded_by_tree_size(self, fig2_graph, fig2_spec):
        oracle = SpreadingOracle(fig2_graph, fig2_spec)
        oracle.set_lengths(np.full(30, 0.01))
        violation = oracle.violation_for(3, mode="max")
        assert violation is not None
        total = sum(
            fig2_graph.node_size(u) for u in violation.nodes
        )
        for _edge, coeff in oracle.tree_cut_coefficients(violation):
            assert 0 < coeff < total
