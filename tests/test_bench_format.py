"""Unit tests for the ISCAS .bench netlist format."""

import pytest

from repro.errors import HypergraphError
from repro.hypergraph.bench_format import read_bench, write_bench

C17 = """\
# c17 (ISCAS85's smallest circuit)
INPUT(G1)
INPUT(G2)
INPUT(G3)
INPUT(G6)
INPUT(G7)
OUTPUT(G22)
OUTPUT(G23)
G10 = NAND(G1, G3)
G11 = NAND(G3, G6)
G16 = NAND(G2, G11)
G19 = NAND(G11, G7)
G22 = NAND(G10, G16)
G23 = NAND(G16, G19)
"""


class TestReadBench:
    def test_c17_shape(self, tmp_path):
        path = tmp_path / "c17.bench"
        path.write_text(C17)
        h = read_bench(path)
        assert h.name == "c17"
        assert h.num_nodes == 5 + 6  # 5 PIs + 6 gates
        # signals with readers: G1,G2,G3,G6,G7,G10,G11,G16,G19 -> 9 nets
        assert h.num_nets == 9

    def test_fanout_net_grouped(self, tmp_path):
        path = tmp_path / "c17.bench"
        path.write_text(C17)
        h = read_bench(path)
        # G11 drives G16 and G19: one 3-pin net
        names = {h.node_name(v): v for v in h.nodes()}
        expected = tuple(sorted((names["G11"], names["G16"], names["G19"])))
        assert expected in h.nets()

    def test_node_names_preserved(self, tmp_path):
        path = tmp_path / "c17.bench"
        path.write_text(C17)
        h = read_bench(path)
        assert h.node_name(0) == "G1"

    def test_unknown_function_rejected(self, tmp_path):
        path = tmp_path / "bad.bench"
        path.write_text("INPUT(A)\nB = FROB(A)\n")
        with pytest.raises(HypergraphError):
            read_bench(path)

    def test_undriven_signal_rejected(self, tmp_path):
        path = tmp_path / "bad.bench"
        path.write_text("INPUT(A)\nB = NAND(A, C)\n")
        with pytest.raises(HypergraphError):
            read_bench(path)

    def test_double_driver_rejected(self, tmp_path):
        path = tmp_path / "bad.bench"
        path.write_text("INPUT(A)\nB = NOT(A)\nB = NOT(A)\n")
        with pytest.raises(HypergraphError):
            read_bench(path)

    def test_garbage_line_rejected(self, tmp_path):
        path = tmp_path / "bad.bench"
        path.write_text("INPUT(A)\nwhat is this\n")
        with pytest.raises(HypergraphError):
            read_bench(path)

    def test_empty_rejected(self, tmp_path):
        path = tmp_path / "empty.bench"
        path.write_text("# nothing\n")
        with pytest.raises(HypergraphError):
            read_bench(path)

    def test_comments_and_blanks_ignored(self, tmp_path):
        path = tmp_path / "c.bench"
        path.write_text("\n# hi\nINPUT(A)\n\nB = NOT(A)  # inline\n")
        h = read_bench(path)
        assert h.num_nodes == 2
        assert h.num_nets == 1


class TestRoundTrip:
    def test_c17_connectivity_survives(self, tmp_path):
        path = tmp_path / "c17.bench"
        path.write_text(C17)
        h = read_bench(path)
        out = tmp_path / "out.bench"
        write_bench(h, out)
        h2 = read_bench(out)
        assert h2.num_nodes == h.num_nodes
        # same nets modulo node naming (names preserved, so identical)
        name_nets = lambda hg: sorted(
            tuple(sorted(hg.node_name(v) for v in pins)) for pins in hg.nets()
        )
        assert name_nets(h2) == name_nets(h)

    def test_synthetic_netlist_writes(self, tmp_path):
        from repro.hypergraph.generators import planted_hierarchy_hypergraph

        h = planted_hierarchy_hypergraph(64, height=2, seed=0)
        out = tmp_path / "synth.bench"
        write_bench(h, out)
        h2 = read_bench(out)
        assert h2.num_nodes == h.num_nodes


class TestBenchMultilevelSchema:
    """Schema of the committed BENCH_multilevel.json scaling record.

    The multilevel bench (benchmarks/bench_multilevel.py) writes one
    ``multilevel_scaling[<instance>]`` op per instance, carrying the
    three engines' quality/time entries that docs/benchmarks.md renders.
    This pins the shape so the docs tables and the bench cannot drift
    apart silently.
    """

    @pytest.fixture(scope="class")
    def payload(self):
        import json
        from pathlib import Path

        path = Path(__file__).resolve().parents[1] / "BENCH_multilevel.json"
        if not path.exists():
            pytest.skip("BENCH_multilevel.json not generated yet")
        return json.loads(path.read_text())

    def test_meta_block(self, payload):
        assert "meta" in payload and "ops" in payload
        meta = payload["meta"]
        for key in ("python", "machine", "scale", "cpu_count"):
            assert key in meta

    def test_scaling_entries(self, payload):
        entries = {
            op: rec
            for op, rec in payload["ops"].items()
            if op.startswith("multilevel_scaling[")
        }
        assert entries, "no multilevel_scaling ops recorded"
        for op, rec in entries.items():
            assert rec["nodes"] >= 64
            assert rec["nets"] > 0
            for engine in ("multilevel_flow", "multilevel_fm"):
                assert rec[engine]["cost"] > 0
                assert rec[engine]["seconds"] >= 0
            flat = rec["flat_flow"]
            assert isinstance(flat["aborted"], bool)
            assert flat["budget_seconds"] > 0
            if flat["aborted"]:
                assert flat["cost"] is None
            else:
                assert flat["cost"] > 0

    def test_full_scale_acceptance(self, payload):
        """At scale 1.0 the committed record must carry the scaling
        claim: V-cycle quality <= FM V-cycle, flat FLOW out of budget
        (or >= 10x slower) at >= 100k nodes."""
        if payload["meta"]["scale"] < 1.0:
            pytest.skip("committed record is not full-scale")
        entries = [
            rec
            for op, rec in payload["ops"].items()
            if op.startswith("multilevel_scaling[")
        ]
        big = [rec for rec in entries if rec["nodes"] >= 100_000]
        assert big, "full-scale record lacks a >=100k-node instance"
        for rec in entries:
            assert (
                rec["multilevel_flow"]["cost"] <= rec["multilevel_fm"]["cost"]
            )
        for rec in big:
            flat = rec["flat_flow"]
            assert flat["aborted"] or flat["seconds"] >= 10.0 * (
                rec["multilevel_flow"]["seconds"]
            )


class TestBenchClusterSchema:
    """Schema of the committed BENCH_cluster.json load record.

    The cluster bench (benchmarks/bench_cluster.py) writes one
    ``cluster_load[wN]`` op per worker count (open-loop p50/p99 +
    throughput), a ``cluster_warm`` shared-cache row and a
    ``cluster_failover`` recovery row.  Pinned here so docs/cluster.md
    and the bench cannot drift apart silently.
    """

    WORKER_COUNTS = (1, 2, 4)

    @pytest.fixture(scope="class")
    def payload(self):
        import json
        from pathlib import Path

        path = Path(__file__).resolve().parents[1] / "BENCH_cluster.json"
        if not path.exists():
            pytest.skip("BENCH_cluster.json not generated yet")
        return json.loads(path.read_text())

    def test_meta_block(self, payload):
        assert "meta" in payload and "ops" in payload
        meta = payload["meta"]
        for key in ("python", "machine", "scale", "cpu_count"):
            assert key in meta

    def test_load_rows_cover_worker_counts(self, payload):
        for workers in self.WORKER_COUNTS:
            rec = payload["ops"][f"cluster_load[w{workers}]"]
            assert rec["workers"] == workers
            assert rec["jobs"] > 0
            assert rec["p50_seconds"] > 0
            assert rec["p99_seconds"] >= rec["p50_seconds"]
            assert rec["throughput_jobs_per_s"] > 0
            # The p50 rides in median_seconds too, the conftest-wide
            # convention every BENCH_*.json record follows.
            assert rec["median_seconds"] == rec["p50_seconds"]

    def test_warm_row(self, payload):
        rec = payload["ops"]["cluster_warm[w2]"]
        assert rec["workers"] == 2
        assert rec["jobs"] > 0
        assert rec["p99_seconds"] >= rec["p50_seconds"] > 0
        # Answering from the router's memory LRU must beat a solve.
        assert rec["speedup_vs_cold"] > 1.0

    def test_failover_row(self, payload):
        rec = payload["ops"]["cluster_failover[kill1of2]"]
        assert rec["workers"] == 2
        assert rec["recovery_seconds"] > 0
        assert rec["reroutes"] >= 1
