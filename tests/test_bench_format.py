"""Unit tests for the ISCAS .bench netlist format."""

import pytest

from repro.errors import HypergraphError
from repro.hypergraph.bench_format import read_bench, write_bench

C17 = """\
# c17 (ISCAS85's smallest circuit)
INPUT(G1)
INPUT(G2)
INPUT(G3)
INPUT(G6)
INPUT(G7)
OUTPUT(G22)
OUTPUT(G23)
G10 = NAND(G1, G3)
G11 = NAND(G3, G6)
G16 = NAND(G2, G11)
G19 = NAND(G11, G7)
G22 = NAND(G10, G16)
G23 = NAND(G16, G19)
"""


class TestReadBench:
    def test_c17_shape(self, tmp_path):
        path = tmp_path / "c17.bench"
        path.write_text(C17)
        h = read_bench(path)
        assert h.name == "c17"
        assert h.num_nodes == 5 + 6  # 5 PIs + 6 gates
        # signals with readers: G1,G2,G3,G6,G7,G10,G11,G16,G19 -> 9 nets
        assert h.num_nets == 9

    def test_fanout_net_grouped(self, tmp_path):
        path = tmp_path / "c17.bench"
        path.write_text(C17)
        h = read_bench(path)
        # G11 drives G16 and G19: one 3-pin net
        names = {h.node_name(v): v for v in h.nodes()}
        expected = tuple(sorted((names["G11"], names["G16"], names["G19"])))
        assert expected in h.nets()

    def test_node_names_preserved(self, tmp_path):
        path = tmp_path / "c17.bench"
        path.write_text(C17)
        h = read_bench(path)
        assert h.node_name(0) == "G1"

    def test_unknown_function_rejected(self, tmp_path):
        path = tmp_path / "bad.bench"
        path.write_text("INPUT(A)\nB = FROB(A)\n")
        with pytest.raises(HypergraphError):
            read_bench(path)

    def test_undriven_signal_rejected(self, tmp_path):
        path = tmp_path / "bad.bench"
        path.write_text("INPUT(A)\nB = NAND(A, C)\n")
        with pytest.raises(HypergraphError):
            read_bench(path)

    def test_double_driver_rejected(self, tmp_path):
        path = tmp_path / "bad.bench"
        path.write_text("INPUT(A)\nB = NOT(A)\nB = NOT(A)\n")
        with pytest.raises(HypergraphError):
            read_bench(path)

    def test_garbage_line_rejected(self, tmp_path):
        path = tmp_path / "bad.bench"
        path.write_text("INPUT(A)\nwhat is this\n")
        with pytest.raises(HypergraphError):
            read_bench(path)

    def test_empty_rejected(self, tmp_path):
        path = tmp_path / "empty.bench"
        path.write_text("# nothing\n")
        with pytest.raises(HypergraphError):
            read_bench(path)

    def test_comments_and_blanks_ignored(self, tmp_path):
        path = tmp_path / "c.bench"
        path.write_text("\n# hi\nINPUT(A)\n\nB = NOT(A)  # inline\n")
        h = read_bench(path)
        assert h.num_nodes == 2
        assert h.num_nets == 1


class TestRoundTrip:
    def test_c17_connectivity_survives(self, tmp_path):
        path = tmp_path / "c17.bench"
        path.write_text(C17)
        h = read_bench(path)
        out = tmp_path / "out.bench"
        write_bench(h, out)
        h2 = read_bench(out)
        assert h2.num_nodes == h.num_nodes
        # same nets modulo node naming (names preserved, so identical)
        name_nets = lambda hg: sorted(
            tuple(sorted(hg.node_name(v) for v in pins)) for pins in hg.nets()
        )
        assert name_nets(h2) == name_nets(h)

    def test_synthetic_netlist_writes(self, tmp_path):
        from repro.hypergraph.generators import planted_hierarchy_hypergraph

        h = planted_hierarchy_hypergraph(64, height=2, seed=0)
        out = tmp_path / "synth.bench"
        write_bench(h, out)
        h2 = read_bench(out)
        assert h2.num_nodes == h.num_nodes
