"""Unit tests for the FLOW phase profiler."""

import pytest

from repro.analysis.profiling import profile_flow, scaling_profile
from repro.core.flow_htp import FlowHTPConfig
from repro.htp.hierarchy import binary_hierarchy
from repro.hypergraph.generators import planted_hierarchy_hypergraph


@pytest.fixture(scope="module")
def instance():
    netlist = planted_hierarchy_hypergraph(96, height=2, seed=0)
    return netlist, binary_hierarchy(netlist.total_size(), height=2)


class TestProfileFlow:
    def test_phases_sum_below_total(self, instance):
        netlist, spec = instance
        profile = profile_flow(
            netlist, spec, FlowHTPConfig(iterations=1, seed=0)
        )
        assert (
            profile.metric_seconds
            + profile.construct_seconds
            + profile.evaluate_seconds
            <= profile.total_seconds + 1e-6
        )
        assert 0.0 <= profile.metric_fraction <= 1.0

    def test_cost_matches_flow(self, instance):
        from repro.core.flow_htp import flow_htp

        netlist, spec = instance
        config = FlowHTPConfig(iterations=1, seed=3)
        profile = profile_flow(netlist, spec, config)
        result = flow_htp(netlist, spec, config)
        assert profile.best_cost == pytest.approx(result.cost)

    def test_scaling_profile(self, instance):
        netlist, spec = instance
        profiles = scaling_profile(
            [netlist, netlist],
            lambda h: spec,
            FlowHTPConfig(iterations=1, seed=0),
        )
        assert len(profiles) == 2
        assert all(p.best_cost > 0 for p in profiles)
