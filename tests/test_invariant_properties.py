"""Property-based tests driving the reusable invariant checkers.

Satellite of the fault-tolerance PR: hypothesis generates random
hierarchy specs, metrics and small graphs; :mod:`repro.testing` asserts
the analytic invariants (g's shape, spreading monotonicity, Equation
(6) cut identity, cost telescoping).  ``derandomize=True`` keeps the
suite deterministic — the same examples run on every machine.
"""

from __future__ import annotations

import random

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.constraints import SpreadingOracle
from repro.core.gfunc import spreading_bound, spreading_bound_array
from repro.htp.hierarchy import HierarchySpec, binary_hierarchy
from repro.hypergraph import Graph
from repro.testing import (
    InvariantViolation,
    check_cost_telescoping,
    check_cut_identity,
    check_g_properties,
    check_partition_feasible,
    check_spreading_monotonicity,
)
from repro.hypergraph.generators import planted_hierarchy_hypergraph
from repro.partitioning.rfm import rfm_partition

PROPERTY_SETTINGS = dict(
    max_examples=40,
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
)


# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------
@st.composite
def hierarchy_specs(draw):
    """Random valid specs: 2..4 levels, increasing capacities."""
    levels = draw(st.integers(min_value=1, max_value=3))
    base = draw(st.floats(min_value=1.0, max_value=10.0))
    ratios = draw(
        st.lists(
            st.floats(min_value=1.5, max_value=4.0),
            min_size=levels,
            max_size=levels,
        )
    )
    capacities = [base]
    for ratio in ratios:
        capacities.append(capacities[-1] * ratio)
    branching = draw(
        st.lists(
            st.integers(min_value=2, max_value=6),
            min_size=levels,
            max_size=levels,
        )
    )
    weights = draw(
        st.lists(
            st.floats(min_value=0.0, max_value=5.0),
            min_size=levels,
            max_size=levels,
        )
    )
    return HierarchySpec(
        capacities=tuple(capacities),
        branching=tuple(branching),
        weights=tuple(weights),
    )


@st.composite
def connected_graphs(draw):
    """Connected graphs with 5..14 nodes (chain + random extras)."""
    n = draw(st.integers(min_value=5, max_value=14))
    extra = draw(
        st.lists(
            st.tuples(
                st.integers(0, n - 1),
                st.integers(0, n - 1),
                st.floats(0.2, 4.0),
            ),
            max_size=20,
        )
    )
    edges = [(i, i + 1, 1.0) for i in range(n - 1)]
    edges += [(u, v, c) for u, v, c in extra if u != v]
    return Graph(n, edges=edges)


# ----------------------------------------------------------------------
# g-function properties (satellite 1a)
# ----------------------------------------------------------------------
class TestGFunctionProperties:
    @given(hierarchy_specs())
    @settings(**PROPERTY_SETTINGS)
    def test_g_shape_invariants(self, spec):
        """g is zero below C_0, nondecreasing, convex, piecewise linear
        with breakpoints at the capacities."""
        check_g_properties(spec)

    @given(hierarchy_specs(), st.floats(0.0, 200.0), st.floats(0.0, 200.0))
    @settings(**PROPERTY_SETTINGS)
    def test_g_nondecreasing_pointwise(self, spec, a, b):
        low, high = sorted((a, b))
        assert spreading_bound(spec, low) <= spreading_bound(
            spec, high
        ) + 1e-9

    @given(hierarchy_specs(), st.floats(0.0, 100.0))
    @settings(**PROPERTY_SETTINGS)
    def test_g_matches_closed_form(self, spec, x):
        """Vectorised g equals the per-level closed form at any point."""
        expected = sum(
            2.0 * max(0.0, x - spec.capacity(i)) * spec.weight(i)
            for i in range(spec.num_levels)
        )
        value = float(spreading_bound_array(spec, np.array([x]))[0])
        assert value == pytest.approx(expected, rel=1e-12, abs=1e-12)

    def test_checker_rejects_corrupted_g(self, monkeypatch):
        """Negative control: a non-convex g implementation is caught."""
        import repro.testing.invariants as invariants

        spec = HierarchySpec(
            capacities=(4.0, 8.0, 16.0), branching=(2, 2), weights=(1.0, 2.0)
        )
        real = invariants.spreading_bound_array

        def corrupted(spec_arg, sizes):
            values = real(spec_arg, sizes)
            # A concave kink: square-root growth past the last capacity.
            x = np.asarray(sizes, dtype=float)
            bump = np.sqrt(np.maximum(x - 16.0, 0.0))
            return np.where(x > 16.0, values + bump, values)

        monkeypatch.setattr(
            invariants, "spreading_bound_array", corrupted
        )
        with pytest.raises(InvariantViolation):
            check_g_properties(spec)


# ----------------------------------------------------------------------
# Spreading-constraint properties (satellite 1b)
# ----------------------------------------------------------------------
class TestSpreadingConstraintProperties:
    @given(connected_graphs(), st.integers(0, 1000), st.floats(1.1, 4.0))
    @settings(**PROPERTY_SETTINGS)
    def test_satisfaction_monotone_in_lengths(self, graph, seed, scale):
        """Scaling every edge length up never breaks a satisfied
        constraint (monotonicity of shortest-path distances)."""
        spec = binary_hierarchy(
            max(graph.total_size(), 4), height=2, slack=0.4
        )
        rng = random.Random(seed)
        low = np.array(
            [rng.uniform(0.01, 1.0) for _ in range(graph.num_edges)]
        )
        check_spreading_monotonicity(graph, spec, low, low * scale)

    @given(connected_graphs(), st.integers(0, 1000))
    @settings(**PROPERTY_SETTINGS)
    def test_cut_identity_on_violations(self, graph, seed):
        """Equation (6): violated trees satisfy sum d(e)*delta == lhs."""
        spec = binary_hierarchy(
            max(graph.total_size(), 4), height=2, slack=0.4
        )
        rng = random.Random(seed)
        oracle = SpreadingOracle(graph, spec)
        # Tiny lengths keep everything close -> many violations.
        oracle.set_lengths(
            [rng.uniform(1e-4, 1e-3) for _ in range(graph.num_edges)]
        )
        checked = 0
        for source in range(graph.num_nodes):
            violation = oracle.violation_for(source)
            if violation is not None:
                check_cut_identity(oracle, violation)
                checked += 1
        assert checked > 0  # tiny lengths must violate something


# ----------------------------------------------------------------------
# Partition / cost invariants on real partitions
# ----------------------------------------------------------------------
class TestPartitionInvariants:
    @given(st.integers(0, 30))
    @settings(max_examples=15, deadline=None, derandomize=True,
              suppress_health_check=[HealthCheck.too_slow])
    def test_rfm_partitions_feasible_and_telescoping(self, seed):
        netlist = planted_hierarchy_hypergraph(
            48, height=2, seed=seed % 7, name=f"prop{seed}"
        )
        spec = binary_hierarchy(netlist.total_size(), height=2)
        partition = rfm_partition(netlist, spec, rng=random.Random(seed))
        check_partition_feasible(netlist, partition, spec)
        check_cost_telescoping(netlist, partition, spec)
