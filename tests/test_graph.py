"""Unit tests for the weighted Graph model."""

import numpy as np
import pytest

from repro.errors import HypergraphError
from repro.hypergraph import Graph


def triangle():
    return Graph(3, edges=[(0, 1, 2.0), (1, 2, 3.0), (0, 2, 4.0)])


class TestConstruction:
    def test_counts(self):
        g = triangle()
        assert g.num_nodes == 3
        assert g.num_edges == 3

    def test_parallel_edges_merge_capacities(self):
        g = Graph(2, edges=[(0, 1, 1.0), (1, 0, 2.5)])
        assert g.num_edges == 1
        assert g.capacity(0) == 3.5

    def test_default_capacity_is_one(self):
        g = Graph(2, edges=[(0, 1)])
        assert g.capacity(0) == 1.0

    def test_edges_are_normalised(self):
        g = Graph(3, edges=[(2, 0, 1.0)])
        assert g.edge(0) == (0, 2)

    def test_rejects_self_loop(self):
        with pytest.raises(HypergraphError):
            Graph(2, edges=[(1, 1)])

    def test_rejects_out_of_range(self):
        with pytest.raises(HypergraphError):
            Graph(2, edges=[(0, 2)])

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(HypergraphError):
            Graph(2, edges=[(0, 1, 0.0)])

    def test_node_sizes(self):
        g = Graph(2, edges=[(0, 1)], node_sizes=[2.0, 5.0])
        assert g.node_size(1) == 5.0
        assert g.total_size() == 7.0
        assert g.total_size([0]) == 2.0


class TestAdjacency:
    def test_neighbors(self):
        g = triangle()
        neighbors = {u for u, _e in g.neighbors(0)}
        assert neighbors == {1, 2}

    def test_degree(self):
        assert triangle().degree(1) == 2

    def test_edge_id(self):
        g = triangle()
        eid = g.edge_id(2, 1)
        assert eid is not None
        assert set(g.edge(eid)) == {1, 2}
        assert g.edge_id(0, 0) is None or True  # no self edges exist
        g2 = Graph(3, edges=[(0, 1)])
        assert g2.edge_id(0, 2) is None


class TestCSR:
    def test_structure_shape(self):
        g = triangle()
        matrix, slots = g.csr_structure()
        assert matrix.shape == (3, 3)
        assert slots.shape == (3, 2)

    def test_set_weights_symmetric(self):
        g = triangle()
        weights = np.array([10.0, 20.0, 30.0])
        matrix = g.set_csr_weights(weights)
        dense = matrix.toarray()
        assert dense[0, 1] == dense[1, 0]
        for edge_id, (u, v) in enumerate(g.edges()):
            assert dense[u, v] == weights[edge_id]

    def test_scipy_dijkstra_agrees_with_reference(self):
        from scipy.sparse.csgraph import dijkstra as csgraph_dijkstra

        from repro.algorithms.dijkstra import dijkstra

        g = Graph(
            5,
            edges=[(0, 1, 1), (1, 2, 1), (2, 3, 1), (3, 4, 1), (0, 4, 10)],
        )
        lengths = np.array([1.0, 2.0, 3.0, 4.0, 5.0])
        matrix = g.set_csr_weights(lengths)
        scipy_dist = csgraph_dijkstra(matrix, directed=False, indices=0)
        ref_dist, _pn, _pe = dijkstra(g, 0, lengths)
        assert np.allclose(scipy_dist, ref_dist)


class TestSubgraph:
    def test_induced_edges(self):
        g = triangle()
        sub, mapping = g.subgraph([0, 2])
        assert sub.num_nodes == 2
        assert sub.num_edges == 1
        assert sub.capacity(0) == 4.0
        assert set(mapping) == {0, 2}

    def test_empty_rejected(self):
        with pytest.raises(HypergraphError):
            triangle().subgraph([])

    def test_node_sizes_carry_over(self):
        g = Graph(3, edges=[(0, 1), (1, 2)], node_sizes=[1.0, 2.0, 3.0])
        sub, mapping = g.subgraph([1, 2])
        assert sub.node_size(mapping[2]) == 3.0
