"""Unit tests for the exact-oracle subsystem (repro.analysis.exact)."""

import pytest

from repro.analysis.exact import (
    HAS_PULP,
    BranchBoundOracle,
    ExactBackendUnavailable,
    ExactIntractable,
    ILPOracle,
    NotTreeStructured,
    TreeMetricDPOracle,
    assignment_to_partition,
    build_template,
    is_tree_instance,
    solve_exact,
    tree_dp_refine,
)
from repro.errors import ReproError
from repro.htp.cost import total_cost
from repro.htp.hierarchy import HierarchySpec, figure2_hierarchy
from repro.htp.validate import partition_violations
from repro.hypergraph.hypergraph import Hypergraph
from repro.hypergraph.generators import figure2_hypergraph

SPEC = HierarchySpec(capacities=(2, 4, 8), branching=(2, 2), weights=(1, 2))


# ----------------------------------------------------------------------
# Template tree
# ----------------------------------------------------------------------
def test_template_shape_and_chains():
    template = build_template(SPEC)
    # 1 root + 2 level-1 + 4 leaves
    assert template.num_vertices == 7
    assert template.num_leaves == 4
    assert template.levels[0] == 2 and template.parents[0] == -1
    for chain in template.chains:
        # leaf -> level-1 -> root
        assert len(chain) == 3 and chain[-1] == 0
        assert template.levels[chain[0]] == 0
    # capacities follow levels
    assert template.capacities[0] == 8
    assert all(
        template.capacities[v] == 2
        for v in template.leaves
    )


def test_template_refuses_wide_hierarchies():
    wide = HierarchySpec(
        capacities=(1, 4, 16, 64, 256),
        branching=(4, 4, 4, 4),
        weights=(1, 1, 1, 1),
    )
    with pytest.raises(ExactIntractable):
        build_template(wide, max_leaves=64)


def test_assignment_to_partition_drops_empty_blocks():
    template = build_template(SPEC)
    # all four nodes into slot 0: only one chain is materialised
    partition = assignment_to_partition([0, 0], template, SPEC)
    assert not partition_violations(
        Hypergraph(2, [(0, 1)]), partition, SPEC
    )
    assert partition.leaf_of(0) == partition.leaf_of(1)
    # separated nodes land in distinct leaves
    split = assignment_to_partition([0, 3], template, SPEC)
    assert split.leaf_of(0) != split.leaf_of(1)


# ----------------------------------------------------------------------
# Branch-and-bound
# ----------------------------------------------------------------------
def test_branch_bound_proves_figure2_optimum():
    result = BranchBoundOracle().solve(
        figure2_hypergraph(), figure2_hierarchy(), time_limit=60.0
    )
    assert result.status == "optimal"
    assert result.cost == 20.0
    assert result.bound == 20.0
    assert not partition_violations(
        figure2_hypergraph(), result.partition, figure2_hierarchy()
    )


def test_branch_bound_detects_infeasible():
    # one node bigger than C_0 can never be placed
    h = Hypergraph(2, [(0, 1)], node_sizes=[5.0, 1.0])
    result = BranchBoundOracle().solve(h, SPEC, time_limit=5.0)
    assert result.status == "infeasible"
    assert result.cost is None and result.partition is None


def test_branch_bound_timeout_is_anytime():
    # a zero-second box cannot finish but may still carry the incumbent
    h = figure2_hypergraph()
    spec = figure2_hierarchy()
    result = BranchBoundOracle().solve(h, spec, time_limit=0.0)
    assert result.status in ("feasible", "timeout")
    if result.status == "feasible":
        assert result.partition is not None
        assert result.cost == total_cost(h, result.partition, spec)


def test_branch_bound_warm_start_uses_incumbent():
    h = figure2_hypergraph()
    spec = figure2_hierarchy()
    seeded = BranchBoundOracle().solve(h, spec, time_limit=60.0)
    warm = BranchBoundOracle(incumbent=seeded.partition).solve(
        h, spec, time_limit=60.0
    )
    assert warm.status == "optimal" and warm.cost == 20.0
    # the warm start can only shrink the explored tree
    assert warm.stats["expansions"] <= seeded.stats["expansions"]


# ----------------------------------------------------------------------
# Tree-metric DP
# ----------------------------------------------------------------------
def test_is_tree_instance_classification():
    assert is_tree_instance(Hypergraph(3, [(0, 1), (1, 2)]))
    # parallel nets merge, still a tree
    assert is_tree_instance(Hypergraph(2, [(0, 1), (0, 1)]))
    # cycle
    assert not is_tree_instance(Hypergraph(3, [(0, 1), (1, 2), (0, 2)]))
    # multi-pin net
    assert not is_tree_instance(Hypergraph(3, [(0, 1, 2)]))


def test_tree_dp_rejects_non_tree():
    with pytest.raises(NotTreeStructured):
        TreeMetricDPOracle().solve(
            Hypergraph(3, [(0, 1), (1, 2), (0, 2)]), SPEC
        )


def test_tree_dp_solves_path_exactly():
    h = Hypergraph(8, [(i, i + 1) for i in range(7)])
    result = TreeMetricDPOracle().solve(h, SPEC, time_limit=30.0)
    assert result.status == "optimal"
    # path of 8 under (2,4,8)/(2,2): 3 forced cuts at level 0 (one also
    # at level 1): 3*2*w0 + 1*2*w1 contributions sum to 10
    assert result.cost == 10.0
    assert not partition_violations(h, result.partition, SPEC)


def test_tree_dp_handles_forest_and_isolated_nodes():
    # two components + an isolated node
    h = Hypergraph(5, [(0, 1), (2, 3)])
    result = TreeMetricDPOracle().solve(h, SPEC, time_limit=30.0)
    assert result.status == "optimal"
    assert result.cost == 0.0  # everything fits without cutting any net
    assert not partition_violations(h, result.partition, SPEC)


def test_tree_dp_detects_infeasible():
    h = Hypergraph(2, [(0, 1)], node_sizes=[5.0, 1.0])
    result = TreeMetricDPOracle().solve(h, SPEC, time_limit=5.0)
    assert result.status == "infeasible"


def test_tree_dp_state_budget_raises_intractable():
    h = Hypergraph(8, [(i, i + 1) for i in range(7)])
    oracle = TreeMetricDPOracle(state_budget=3)
    with pytest.raises(ExactIntractable):
        oracle.solve(h, SPEC, time_limit=30.0)


# ----------------------------------------------------------------------
# Dispatcher
# ----------------------------------------------------------------------
def test_solve_exact_auto_routes_trees_to_dp():
    h = Hypergraph(6, [(i, i + 1) for i in range(5)])
    result = solve_exact(h, SPEC, method="auto")
    assert result.solver == "tree-dp"
    assert result.status == "optimal"


def test_solve_exact_auto_routes_general_instances():
    h = Hypergraph(3, [(0, 1), (1, 2), (0, 2)])
    result = solve_exact(h, SPEC, method="auto")
    assert result.solver == ("ilp" if HAS_PULP else "branch-bound")
    assert result.status == "optimal"


def test_solve_exact_rejects_unknown_method_and_big_instances():
    h = Hypergraph(2, [(0, 1)])
    with pytest.raises(ReproError):
        solve_exact(h, SPEC, method="simplex")
    big = Hypergraph(80, [(i, i + 1) for i in range(79)])
    with pytest.raises(ExactIntractable):
        solve_exact(big, SPEC, max_nodes=64)


def test_ilp_backend_gated_without_pulp():
    if HAS_PULP:
        pytest.skip("pulp installed; the gate does not trigger")
    with pytest.raises(ExactBackendUnavailable):
        ILPOracle().solve(Hypergraph(2, [(0, 1)]), SPEC)


def test_exact_result_gap_semantics():
    h = Hypergraph(6, [(i, i + 1) for i in range(5)])
    result = solve_exact(h, SPEC)
    assert result.gap(result.cost) == 1.0
    assert result.gap(result.cost * 2) == 2.0


# ----------------------------------------------------------------------
# Refinement bridge
# ----------------------------------------------------------------------
def test_tree_dp_refine_improves_suboptimal_tree_partition():
    h = Hypergraph(8, [(i, i + 1) for i in range(7)])
    # a deliberately bad feasible partition: interleave odds and evens
    template = build_template(SPEC)
    bad = assignment_to_partition(
        [0, 2, 0, 2, 1, 3, 1, 3], template, SPEC
    )
    bad_cost = total_cost(h, bad, SPEC)
    refined = tree_dp_refine(h, SPEC, bad)
    assert refined is not None
    better, better_cost = refined
    assert better_cost < bad_cost
    assert better_cost == 10.0  # the proven optimum for this path
    assert not partition_violations(h, better, SPEC)


def test_tree_dp_refine_returns_none_when_already_optimal():
    h = Hypergraph(8, [(i, i + 1) for i in range(7)])
    optimal = solve_exact(h, SPEC, method="dp").partition
    assert tree_dp_refine(h, SPEC, optimal) is None


def test_tree_dp_refine_gives_up_on_large_instances():
    h = Hypergraph(40, [(i, i + 1) for i in range(39)])
    template_spec = HierarchySpec(
        capacities=(8, 16, 64), branching=(2, 4), weights=(1, 2)
    )
    template = build_template(template_spec)
    partition = assignment_to_partition(
        [i // 8 for i in range(40)], template, template_spec
    )
    assert (
        tree_dp_refine(h, template_spec, partition, max_nodes=32) is None
    )


def test_tree_dp_refine_surrogate_on_non_tree_instance():
    h = figure2_hypergraph()
    spec = figure2_hierarchy()
    # a feasible but clearly suboptimal figure2 partition: stripe the
    # four natural clusters across the four leaves
    template = build_template(spec)
    assignment = [i % 4 for i in range(16)]
    striped = assignment_to_partition(assignment, template, spec)
    striped_cost = total_cost(h, striped, spec)
    refined = tree_dp_refine(h, spec, striped)
    # the MST surrogate recovers the cluster structure and must improve
    assert refined is not None
    better, better_cost = refined
    assert better_cost < striped_cost
    assert not partition_violations(h, better, spec)
