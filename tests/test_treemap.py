"""Unit tests for min-cost tree partitioning (Vijayan [16]) and the
HTP <-> tree-routing equivalence."""

import random

import pytest

from repro.errors import HierarchyError, InfeasibleError, PartitionError
from repro.htp.cost import total_cost
from repro.htp.hierarchy import binary_hierarchy, figure2_hierarchy
from repro.hypergraph import Hypergraph
from repro.hypergraph.generators import (
    figure2_hypergraph,
    planted_hierarchy_hypergraph,
)
from repro.partitioning.random_init import random_partition
from repro.treemap import (
    RoutingTree,
    TreeAssignConfig,
    greedy_tree_assignment,
    hierarchy_routing_tree,
    net_routing_cost,
    tree_routing_cost,
    tree_fm_improve,
)


def star_tree(leaves=3, capacity=4.0, weight=1.0):
    """Root (capacity 0) with `leaves` hosting children."""
    parents = [-1] + [0] * leaves
    capacities = [0.0] + [capacity] * leaves
    weights = [0.0] + [weight] * leaves
    return RoutingTree(parents, capacities, weights)


class TestRoutingTree:
    def test_structure(self):
        tree = star_tree()
        assert tree.num_vertices == 4
        assert tree.parent(0) == -1
        assert tree.children(0) == (1, 2, 3)

    def test_root_must_be_first(self):
        with pytest.raises(HierarchyError):
            RoutingTree([0, -1], [1.0, 1.0])

    def test_parent_must_precede(self):
        with pytest.raises(HierarchyError):
            RoutingTree([-1, 2, 1], [1.0] * 3)


class TestRoutingCost:
    def test_net_within_one_vertex_is_free(self):
        tree = star_tree()
        h = Hypergraph(2, nets=[(0, 1)])
        assert tree_routing_cost(tree, h, [1, 1]) == 0.0

    def test_net_across_two_leaves_uses_two_edges(self):
        tree = star_tree(weight=3.0)
        h = Hypergraph(2, nets=[(0, 1)])
        assert tree_routing_cost(tree, h, [1, 2]) == 6.0

    def test_three_way_net(self):
        tree = star_tree()
        h = Hypergraph(3, nets=[(0, 1, 2)])
        # pins on three leaves: three edges to the root
        assert tree_routing_cost(tree, h, [1, 2, 3]) == 3.0

    def test_capacity_violation_detected(self):
        tree = star_tree(capacity=1.0)
        h = Hypergraph(2, nets=[(0, 1)])
        with pytest.raises(PartitionError):
            tree_routing_cost(tree, h, [1, 1])

    def test_net_capacity_scales(self):
        tree = star_tree()
        h = Hypergraph(2, nets=[(0, 1)], net_capacities=[5.0])
        assert net_routing_cost(tree, h, [1, 2], 0) == 10.0


class TestHTPEquivalence:
    """Equation (1) == routing cost on the hierarchy tree (Vijayan view)."""

    def test_figure2_optimal(self, fig2_optimal_partition):
        h = figure2_hypergraph()
        spec = figure2_hierarchy()
        tree, assignment, _vmap = hierarchy_routing_tree(
            fig2_optimal_partition, spec
        )
        assert tree_routing_cost(tree, h, assignment) == pytest.approx(
            total_cost(h, fig2_optimal_partition, spec)
        )

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_random_partitions(self, seed):
        h = planted_hierarchy_hypergraph(96, height=3, seed=7)
        spec = binary_hierarchy(h.total_size(), height=3)
        partition = random_partition(h, spec, rng=random.Random(seed))
        tree, assignment, _vmap = hierarchy_routing_tree(partition, spec)
        assert tree_routing_cost(tree, h, assignment) == pytest.approx(
            total_cost(h, partition, spec)
        )

    def test_weighted_levels(self):
        h = planted_hierarchy_hypergraph(64, height=2, seed=1)
        spec = binary_hierarchy(h.total_size(), height=2, weights=(1.0, 5.0))
        partition = random_partition(h, spec, rng=random.Random(9))
        tree, assignment, _vmap = hierarchy_routing_tree(partition, spec)
        assert tree_routing_cost(tree, h, assignment) == pytest.approx(
            total_cost(h, partition, spec)
        )


class TestAssignment:
    def test_greedy_is_feasible(self):
        tree = star_tree(leaves=4, capacity=6.0)
        h = planted_hierarchy_hypergraph(20, height=1, seed=0)
        assignment = greedy_tree_assignment(tree, h)
        tree_routing_cost(tree, h, assignment)  # validates capacities

    def test_infeasible_capacity_raises(self):
        tree = star_tree(leaves=2, capacity=3.0)
        h = planted_hierarchy_hypergraph(20, height=1, seed=0)
        with pytest.raises(InfeasibleError):
            greedy_tree_assignment(tree, h)

    def test_fm_never_worsens(self):
        tree = star_tree(leaves=4, capacity=8.0)
        h = planted_hierarchy_hypergraph(24, height=1, seed=3)
        initial = greedy_tree_assignment(tree, h, rng=random.Random(5))
        before = tree_routing_cost(tree, h, initial)
        improved, after = tree_fm_improve(
            tree, h, initial, TreeAssignConfig(max_passes=3)
        )
        assert after <= before + 1e-9
        assert after == pytest.approx(tree_routing_cost(tree, h, improved))

    def test_fm_finds_obvious_improvement(self):
        # two 3-cliques split across leaves; FM should reunite them
        nets = [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)]
        h = Hypergraph(6, nets=nets)
        tree = star_tree(leaves=2, capacity=3.0)
        scrambled = [1, 2, 1, 2, 1, 2]
        improved, cost = tree_fm_improve(tree, h, scrambled)
        assert cost == 0.0
        assert len(set(improved[:3])) == 1
        assert len(set(improved[3:])) == 1
