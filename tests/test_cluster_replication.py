"""Shared-nothing failover units: replicas, epochs, the warm standby.

Everything here runs in-process (fake clients, fake clocks, thread-based
routers); the cross-process proofs live in ``tests/chaos/``.
"""

from __future__ import annotations

import json
import time

import pytest

from repro.core.checkpoint import (
    list_checkpoint_frames,
    payload_crc,
    write_checkpoint_file,
)
from repro.core.perf import PerfCounters
from repro.service.client import ServiceClient, ServiceClientError
from repro.service.cluster import (
    CheckpointReplicator,
    ClusterRouter,
    ClusterView,
    PeerInfo,
    RouterThread,
    WorkerRegistry,
    replay_cluster,
    replica_owners,
)
from repro.service.journal import encode_line


# ----------------------------------------------------------------------
# Replica placement
# ----------------------------------------------------------------------
class TestReplicaOwners:
    def _peers(self, count):
        return [
            PeerInfo(worker_id=f"w{i}", url=f"http://w{i}")
            for i in range(count)
        ]

    def test_owners_are_distinct(self):
        owners = replica_owners("spec-a", self._peers(5), 3)
        assert len(owners) == 3
        assert len(set(owners)) == 3

    def test_exclusion_is_honoured(self):
        peers = self._peers(4)
        owners = replica_owners("spec-a", peers, 2, exclude=("w0", "w1"))
        assert set(owners) <= {"w2", "w3"}

    def test_degrades_on_small_clusters(self):
        # Fewer peers than requested replicas: every available peer is
        # an owner, nothing blocks waiting for capacity that isn't there.
        owners = replica_owners("spec-a", self._peers(2), 5)
        assert sorted(owners) == ["w0", "w1"]

    def test_one_worker_cluster_replicates_nowhere(self):
        owners = replica_owners("spec-a", self._peers(1), 2, exclude=("w0",))
        assert owners == []

    def test_zero_count_and_empty_ring(self):
        assert replica_owners("spec-a", self._peers(3), 0) == []
        assert replica_owners("spec-a", [], 2) == []

    def test_placement_is_deterministic(self):
        peers = self._peers(6)
        assert replica_owners("k", peers, 3) == replica_owners("k", peers, 3)


# ----------------------------------------------------------------------
# Fencing-epoch journal replay
# ----------------------------------------------------------------------
def _placed(job_id, worker="w0"):
    return {
        "type": "placed",
        "job_id": job_id,
        "spec_hash": "a" * 64,
        "spec": {"stub": True},
        "worker": worker,
    }


class TestEpochReplay:
    def test_epoch_tracks_maximum(self):
        state = replay_cluster(
            [
                {"type": "epoch", "epoch": 1},
                _placed("j1"),
                {"type": "epoch", "epoch": 3},
                {"type": "epoch", "epoch": 2},  # regression: skipped
            ]
        )
        assert state.epoch == 3
        assert state.skipped == 1
        assert "j1" in state.jobs

    def test_no_epoch_record_means_zero(self):
        assert replay_cluster([_placed("j1")]).epoch == 0

    def test_malformed_epochs_are_skipped(self):
        state = replay_cluster(
            [
                {"type": "epoch"},
                {"type": "epoch", "epoch": "two"},
                {"type": "epoch", "epoch": True},  # bools are not epochs
                {"type": "epoch", "epoch": -1},
            ]
        )
        assert state.epoch == 0
        assert state.skipped == 4


# ----------------------------------------------------------------------
# The worker-side cluster view
# ----------------------------------------------------------------------
class TestClusterView:
    def test_update_adopts_announcements(self):
        view = ClusterView()
        bumped = view.update(
            {
                "epoch": 1,
                "replicas": 2,
                "standby": "http://standby",
                "peers": [
                    {"worker_id": "w1", "url": "http://w1", "weight": 2.0},
                    {"worker_id": "w2", "url": "http://w2"},
                ],
            }
        )
        assert bumped is False  # first epoch is adoption, not a bump
        assert view.epoch == 1
        assert view.replicas == 2
        assert view.standby_url == "http://standby"
        assert {p.worker_id for p in view.peers()} == {"w1", "w2"}
        assert [p.worker_id for p in view.peers(exclude="w1")] == ["w2"]

    def test_epoch_bump_is_flagged(self):
        view = ClusterView()
        view.update({"epoch": 1})
        assert view.update({"epoch": 1}) is False  # no change
        assert view.update({"epoch": 2}) is True  # a real takeover
        assert view.epoch == 2

    def test_update_ignores_garbage(self):
        view = ClusterView()
        view.update({"epoch": 1, "replicas": 1})
        view.update(
            {"epoch": "nine", "replicas": -3, "peers": "nope", "standby": 7}
        )
        assert view.epoch == 1
        assert view.replicas == 1

    def test_admit_epoch_fences_zombies(self):
        view = ClusterView()
        assert view.admit_epoch(2) is True  # first news of the takeover
        assert view.admit_epoch(1) is False  # the zombie's stale stamp
        assert view.admit_epoch(2) is True  # the live router again
        assert view.admit_epoch(None) is True  # unstamped (pre-cluster)
        assert view.epoch == 2


# ----------------------------------------------------------------------
# Checkpoint replication with fake peers
# ----------------------------------------------------------------------
class _FakePeerClient:
    """Implements the ckpt_* client surface over an in-memory store."""

    def __init__(self, store, down=None):
        self.store = store  # spec_hash -> {seq: envelope}
        self.down = down if down is not None else []

    def _check(self):
        if self.down and self.down[0]:
            raise ServiceClientError("peer unreachable")

    def ckpt_push(self, spec_hash, seq, envelope):
        self._check()
        self.store.setdefault(spec_hash, {})[seq] = envelope
        return {"stored": True}

    def ckpt_frames(self, spec_hash):
        self._check()
        return {"frames": sorted(self.store.get(spec_hash, {}))}

    def ckpt_frame(self, spec_hash, seq):
        self._check()
        try:
            return self.store[spec_hash][seq]
        except KeyError:
            raise ServiceClientError("no such frame", status=404)


def _view_with_peer(worker_id="w2", replicas=1):
    view = ClusterView()
    view.update(
        {
            "epoch": 1,
            "replicas": replicas,
            "peers": [
                {"worker_id": "w1", "url": "http://w1"},
                {"worker_id": worker_id, "url": f"http://{worker_id}"},
            ],
        }
    )
    return view


def _envelope(payload):
    return {"crc32": payload_crc(payload), "payload": payload}


class TestCheckpointReplicator:
    def _replicator(self, tmp_path, store, down=None, counters=None):
        view = _view_with_peer()
        return CheckpointReplicator(
            tmp_path / "ckpt",
            "w1",
            view,
            client_factory=lambda url: _FakePeerClient(store, down=down),
            counters=counters,
        )

    def test_sync_pushes_new_frames_once(self, tmp_path):
        spec_dir = tmp_path / "ckpt" / ("a" * 64)
        write_checkpoint_file(spec_dir, 0, {"round": 0})
        write_checkpoint_file(spec_dir, 1, {"round": 1})
        store, counters = {}, PerfCounters()
        replicator = self._replicator(tmp_path, store, counters=counters)
        assert replicator.sync() == 2
        assert sorted(store["a" * 64]) == [0, 1]
        assert counters.ckpt_replications == 2
        # Incremental: nothing new, nothing shipped.
        assert replicator.sync() == 0
        write_checkpoint_file(spec_dir, 2, {"round": 2})
        assert replicator.sync() == 1
        assert counters.ckpt_replications == 3

    def test_unreachable_peer_is_retried_next_sweep(self, tmp_path):
        spec_dir = tmp_path / "ckpt" / ("b" * 64)
        write_checkpoint_file(spec_dir, 0, {"round": 0})
        store, down = {}, [True]
        replicator = self._replicator(tmp_path, store, down=down)
        assert replicator.sync() == 0  # peer down: mark not advanced
        down[0] = False
        assert replicator.sync() == 1  # the missed frame ships now

    def test_no_peers_is_a_noop(self, tmp_path):
        view = ClusterView()  # nothing announced: a one-worker cluster
        replicator = CheckpointReplicator(
            tmp_path / "ckpt", "w1", view,
            client_factory=lambda url: _FakePeerClient({}),
        )
        write_checkpoint_file(
            tmp_path / "ckpt" / ("c" * 64), 0, {"round": 0}
        )
        assert replicator.sync() == 0

    def test_fetch_installs_verified_frames(self, tmp_path):
        store = {"d" * 64: {0: _envelope({"round": 0}),
                            1: _envelope({"round": 1})}}
        counters = PerfCounters()
        replicator = self._replicator(tmp_path, store, counters=counters)
        assert replicator.fetch("d" * 64) == 2
        frames = list_checkpoint_frames(tmp_path / "ckpt" / ("d" * 64))
        assert [seq for seq, _ in frames] == [0, 1]
        assert counters.ckpt_replica_fetches == 2

    def test_fetch_skips_frames_already_local(self, tmp_path):
        spec_dir = tmp_path / "ckpt" / ("e" * 64)
        write_checkpoint_file(spec_dir, 1, {"round": 1})
        store = {"e" * 64: {0: _envelope({"round": 0}),
                            2: _envelope({"round": 2})}}
        replicator = self._replicator(tmp_path, store)
        assert replicator.fetch("e" * 64) == 1  # only seq 2 is newer
        frames = list_checkpoint_frames(spec_dir)
        assert [seq for seq, _ in frames] == [1, 2]

    def test_torn_replicated_frame_is_discarded_and_counted(self, tmp_path):
        torn = _envelope({"round": 0})
        torn["crc32"] = "0" * len(str(torn["crc32"]))  # bit rot in flight
        store = {"f" * 64: {0: torn, 1: _envelope({"round": 1})}}
        counters = PerfCounters()
        replicator = self._replicator(tmp_path, store, counters=counters)
        assert replicator.fetch("f" * 64) == 1  # the good frame only
        frames = list_checkpoint_frames(tmp_path / "ckpt" / ("f" * 64))
        assert [seq for seq, _ in frames] == [1]
        assert counters.checkpoints_discarded == 1
        assert counters.ckpt_replica_fetches == 1


# ----------------------------------------------------------------------
# Monotonic clocks: frozen and stepped fakes
# ----------------------------------------------------------------------
class _FakeClock:
    def __init__(self, now=100.0):
        self.now = now

    def __call__(self):
        return self.now


class TestInjectedClocks:
    def test_frozen_clock_never_declares_workers_overdue(self):
        clock = _FakeClock()
        registry = WorkerRegistry(
            heartbeat_interval=0.001, max_missed=1, clock=clock
        )
        registry.register(_registry_worker("w1"))
        # Real wall time passing is irrelevant: only the injected
        # monotonic clock drives the overdue arithmetic.
        time.sleep(0.01)
        assert registry.overdue() == []

    def test_stepped_clock_walks_the_ladder_deterministically(self):
        clock = _FakeClock()
        registry = WorkerRegistry(
            heartbeat_interval=1.0, max_missed=3, clock=clock
        )
        registry.register(_registry_worker("w1"))
        clock.now += 2.9
        assert registry.overdue() == []
        clock.now += 0.2  # 3.1 missed-intervals: past the budget
        assert [w.worker_id for w in registry.overdue()] == ["w1"]

    def test_router_monitor_uses_injected_clock(self):
        clock = _FakeClock()
        router = ClusterRouter(
            heartbeat_interval=1.0,
            max_missed=2,
            probe_retries=1,
            probe_timeout=0.2,
            clock=clock,
        )
        router.join(
            {
                "worker_id": "w1",
                # A port nothing listens on: probes fail instantly.
                "url": "http://127.0.0.1:9",
                "max_concurrency": 1,
            }
        )
        router.monitor_tick()
        assert router.registry.get("w1").state == "alive"  # not overdue
        clock.now += 10.0
        router.monitor_tick()  # overdue -> probe fails -> dead (budget 1)
        assert router.registry.get("w1").state == "dead"


def _registry_worker(worker_id):
    from repro.service.cluster.registry import WorkerInfo

    return WorkerInfo(worker_id=worker_id, url=f"http://{worker_id}")


# ----------------------------------------------------------------------
# Warm standby: tail, takeover, torn-tail recovery
# ----------------------------------------------------------------------
def _wait_for(predicate, timeout=15.0, message="condition never held"):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.05)
    raise AssertionError(message)


class TestWarmStandby:
    def test_standby_requires_a_journal(self):
        with pytest.raises(Exception, match="journal"):
            thread = RouterThread(standby_of="http://127.0.0.1:9")
            thread.stop()

    def test_tail_takeover_and_epoch_bump(self, tmp_path):
        primary = RouterThread(
            router_kwargs={
                "journal_dir": tmp_path / "wal-primary",
                "heartbeat_interval": 0.1,
            }
        )
        standby = RouterThread(
            router_kwargs={
                "journal_dir": tmp_path / "wal-standby",
                "heartbeat_interval": 0.1,
                "probe_timeout": 0.5,
            },
            standby_of=primary.url,
            epoch_timeout=0.5,
        )
        try:
            client = ServiceClient(standby.url)
            assert client.healthz()["role"] == "standby"
            with pytest.raises(ServiceClientError) as excinfo:
                client.submit({"not": "served yet"})
            assert excinfo.value.status == 503

            # The tail copies the primary's WAL (epoch 1 at least) and
            # the self-announcement lands on the primary.
            primary_client = ServiceClient(primary.url)
            assert primary_client.wal_since(0)["records"][0] == {
                "type": "epoch",
                "epoch": 1,
            }
            _wait_for(
                lambda: (tmp_path / "wal-standby" / "journal.jsonl").exists()
                and primary_client.metricsz()["cluster"]["standby"]
                == standby.url,
                message="standby never announced itself",
            )

            primary.stop()
            _wait_for(
                lambda: _role(client) == "router",
                message="standby never took over",
            )
            assert standby.server.took_over is True
            metrics = client.metricsz()["cluster"]
            assert metrics["epoch"] == 2  # tailed epoch 1, adopted 2
            assert metrics["epoch_bumps"] == 1
        finally:
            standby.stop()
            primary.stop()

    def test_takeover_replays_a_torn_wal_tail(self, tmp_path):
        wal_dir = tmp_path / "wal-standby"
        wal_dir.mkdir(parents=True)
        good = encode_line({"type": "epoch", "epoch": 3}) + encode_line(
            _placed("j-torn-1")
        )
        torn = encode_line({"type": "resolved", "job_id": "j-torn-1"})
        (wal_dir / "journal.jsonl").write_text(
            good + torn[: len(torn) // 2], encoding="utf-8"
        )
        standby = RouterThread(
            router_kwargs={
                "journal_dir": wal_dir,
                "heartbeat_interval": 0.1,
                "probe_timeout": 0.5,
            },
            # A dead primary: the first polls fail, takeover is quick.
            standby_of="http://127.0.0.1:9",
            epoch_timeout=0.3,
        )
        try:
            client = ServiceClient(standby.url)
            _wait_for(
                lambda: _role(client) == "router",
                message="standby never took over",
            )
            # The torn tail was dropped (and counted), the valid prefix
            # replayed: job recovered, epoch moved past the journaled 3.
            metrics = client.metricsz()
            assert metrics["cluster"]["epoch"] == 4
            assert metrics["perf"]["journal_torn_records"] >= 1
            listed = {job["job_id"] for job in client.jobs()["jobs"]}
            assert "j-torn-1" in listed
        finally:
            standby.stop()


def _role(client):
    try:
        return client.healthz()["role"]
    except ServiceClientError:
        return None


# ----------------------------------------------------------------------
# /metricsz cluster schema
# ----------------------------------------------------------------------
class TestClusterMetricsSchema:
    def test_cluster_section_schema_is_pinned(self, tmp_path):
        with RouterThread(
            router_kwargs={"journal_dir": tmp_path / "wal"}
        ) as router:
            metrics = ServiceClient(router.url).metricsz()
        cluster = metrics["cluster"]
        assert sorted(cluster) == [
            "cache_replications",
            "ckpt_replica_fetches",
            "ckpt_replications",
            "epoch",
            "epoch_bumps",
            "heartbeat_interval",
            "netfaults_injected",
            "placements",
            "policy",
            "remote_cache_hits",
            "replicas",
            "reroutes",
            "standby",
            "workers",
        ]
        assert cluster["epoch"] == 1
        assert cluster["replicas"] == 1
        assert cluster["standby"] is None
        for counter in (
            "cache_replications",
            "ckpt_replications",
            "ckpt_replica_fetches",
            "epoch_bumps",
            "netfaults_injected",
        ):
            assert cluster[counter] == 0

    def test_counters_round_trip_through_perf_dict(self):
        counters = PerfCounters()
        counters.ckpt_replications = 3
        counters.cache_replications = 2
        counters.router_epoch_bumps = 1
        counters.ckpt_replica_fetches = 4
        counters.netfaults_injected = 5
        clone = PerfCounters.from_dict(counters.as_dict())
        assert clone.ckpt_replications == 3
        assert clone.cache_replications == 2
        assert clone.router_epoch_bumps == 1
        assert clone.ckpt_replica_fetches == 4
        assert clone.netfaults_injected == 5
