"""Unit tests for random feasible partitions and the full tree shape."""

import random

import pytest

from repro.htp.validate import check_partition
from repro.partitioning.random_init import full_tree_shape, random_partition


class TestFullTreeShape:
    def test_binary_height2(self, small_planted_spec):
        tree = full_tree_shape(small_planted_spec, num_nodes=64)
        assert len(tree.leaves()) == 4
        assert len(tree.vertices_at_level(1)) == 2
        assert tree.num_levels == 2

    def test_every_internal_vertex_has_k_children(self, small_planted_spec):
        tree = full_tree_shape(small_planted_spec, num_nodes=64)
        for level in range(1, tree.num_levels + 1):
            for vertex in tree.vertices_at_level(level):
                assert len(tree.children(vertex)) == 2


class TestRandomPartition:
    def test_valid(self, small_planted, small_planted_spec):
        tree = random_partition(
            small_planted, small_planted_spec, rng=random.Random(0)
        )
        check_partition(small_planted, tree, small_planted_spec)

    def test_all_nodes_assigned(self, small_planted, small_planted_spec):
        tree = random_partition(
            small_planted, small_planted_spec, rng=random.Random(1)
        )
        blocks = tree.leaf_blocks()
        assert sorted(v for b in blocks.values() for v in b) == list(
            small_planted.nodes()
        )

    def test_different_seeds_differ(self, small_planted, small_planted_spec):
        a = random_partition(
            small_planted, small_planted_spec, rng=random.Random(2)
        )
        b = random_partition(
            small_planted, small_planted_spec, rng=random.Random(3)
        )
        assignments_a = [a.leaf_of(v) for v in range(64)]
        assignments_b = [b.leaf_of(v) for v in range(64)]
        assert assignments_a != assignments_b
