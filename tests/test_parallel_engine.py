"""The process-parallel engine tier: bit-identity and fallback.

The contract under test (see ``docs/architecture.md``): for a fixed
seed, ``engine='parallel'`` produces *bit-identical* results to
``engine='scipy'`` for any worker count — the pool only changes how
violation verdicts are computed, never which — and every failure mode
(tiny batches, poisoned pools, unpicklable tasks) degrades to the serial
path rather than to different answers.
"""

import os
import random

import pytest

from repro.core.flow_htp import FlowHTPConfig, flow_htp
from repro.core.construct import construct_partition
from repro.core.parallel import MetricWorkerPool, ParallelConfig, parallel_map
from repro.core.perf import PerfCounters
from repro.core.spreading_metric import (
    SpreadingMetricConfig,
    compute_spreading_metric,
)
from repro.htp.hierarchy import binary_hierarchy
from repro.hypergraph import planted_hierarchy_hypergraph, to_graph

CPUS = os.cpu_count() or 1


@pytest.fixture(scope="module")
def instance():
    hypergraph = planted_hierarchy_hypergraph(num_nodes=96, height=3, seed=5)
    spec = binary_hierarchy(hypergraph.total_size(), height=3)
    graph = to_graph(hypergraph, rng=random.Random(0))
    return hypergraph, graph, spec


@pytest.fixture(scope="module")
def sized_instance():
    """Non-unit node sizes exercise the size-weighted bound paths."""
    from repro.hypergraph import Hypergraph

    base = planted_hierarchy_hypergraph(num_nodes=72, height=2, seed=9)
    sized = Hypergraph(
        72,
        nets=base.nets(),
        node_sizes=[1.0 + (v % 3) for v in base.nodes()],
        name="sized",
    )
    spec = binary_hierarchy(sized.total_size(), height=2)
    graph = to_graph(sized, rng=random.Random(0))
    return sized, graph, spec


def _metric(graph, spec, engine, seed, parallel=None, pool=None):
    config = SpreadingMetricConfig(
        delta=0.05, max_rounds=40, engine=engine, seed=seed, parallel=parallel
    )
    return compute_spreading_metric(
        graph,
        spec,
        config,
        rng=random.Random(seed),
        counters=PerfCounters(),
        pool=pool,
    )


class TestMetricBitIdentity:
    @pytest.mark.parametrize("seed", [0, 3, 11])
    @pytest.mark.parametrize(
        "workers", sorted({1, 2, CPUS}), ids=lambda w: f"workers{w}"
    )
    def test_parallel_matches_scipy(self, instance, seed, workers):
        _, graph, spec = instance
        baseline = _metric(graph, spec, "scipy", seed)
        parallel = ParallelConfig(workers=workers, min_sources_per_task=8)
        result = _metric(graph, spec, "parallel", seed, parallel=parallel)
        assert result.lengths.tolist() == baseline.lengths.tolist()
        assert result.flows.tolist() == baseline.flows.tolist()
        assert result.objective == baseline.objective
        assert result.rounds == baseline.rounds

    def test_parallel_matches_scipy_with_node_sizes(self, sized_instance):
        _, graph, spec = sized_instance
        baseline = _metric(graph, spec, "scipy", seed=2)
        parallel = ParallelConfig(workers=2, min_sources_per_task=8)
        result = _metric(graph, spec, "parallel", seed=2, parallel=parallel)
        assert result.lengths.tolist() == baseline.lengths.tolist()
        assert result.objective == baseline.objective

    def test_pool_counters_populated(self, instance):
        _, graph, spec = instance
        # autoserial=False so real dispatches happen on a 1-core box too.
        parallel = ParallelConfig(
            workers=2, min_sources_per_task=4, autoserial=False
        )
        config = SpreadingMetricConfig(
            delta=0.05, max_rounds=40, engine="parallel", seed=0,
            parallel=parallel,
        )
        counters = PerfCounters()
        compute_spreading_metric(
            graph, spec, config, rng=random.Random(0), counters=counters
        )
        assert counters.pool_dispatches > 0
        assert counters.pool_tasks >= counters.pool_dispatches
        assert counters.pool_fallbacks == 0
        assert sum(counters.pool_workers.values()) > 0


class TestFlowBitIdentity:
    def _run(self, instance, engine, iterations, workers=2):
        hypergraph, graph, spec = instance
        config = FlowHTPConfig(
            iterations=iterations,
            constructions_per_metric=2,
            seed=7,
            metric=SpreadingMetricConfig(
                delta=0.05, max_rounds=40, engine=engine
            ),
            parallel=(
                ParallelConfig(workers=workers, min_sources_per_task=8)
                if engine == "parallel"
                else None
            ),
        )
        return flow_htp(hypergraph, spec, config, graph=graph)

    @pytest.mark.parametrize("iterations", [1, 2])
    def test_flow_parallel_matches_scipy(self, instance, iterations):
        hypergraph = instance[0]
        baseline = self._run(instance, "scipy", iterations)
        result = self._run(instance, "parallel", iterations)
        assert result.cost == baseline.cost
        assert result.iteration_costs == baseline.iteration_costs
        assert result.metric_objectives == baseline.metric_objectives
        assert [
            result.partition.leaf_of(v) for v in hypergraph.nodes()
        ] == [baseline.partition.leaf_of(v) for v in hypergraph.nodes()]

    def test_flow_single_worker_short_circuits(self, instance):
        baseline = self._run(instance, "scipy", 2)
        result = self._run(instance, "parallel", 2, workers=1)
        assert result.cost == baseline.cost
        assert result.perf.pool_dispatches == 0


class TestConstructFanOut:
    def test_construct_parallel_matches_serial(self, instance):
        hypergraph, graph, spec = instance
        metric = _metric(graph, spec, "scipy", seed=1)
        serial = construct_partition(
            hypergraph, graph, spec, metric.lengths, rng=random.Random(4)
        )
        fanned = construct_partition(
            hypergraph,
            graph,
            spec,
            metric.lengths,
            rng=random.Random(4),
            parallel=ParallelConfig(workers=2),
        )
        assert [
            fanned.leaf_of(v) for v in hypergraph.nodes()
        ] == [serial.leaf_of(v) for v in hypergraph.nodes()]


class TestFallback:
    def test_poisoned_pool_falls_back_to_serial(self, instance):
        _, graph, spec = instance
        baseline = _metric(graph, spec, "scipy", seed=0)
        parallel = ParallelConfig(workers=2, min_sources_per_task=8)
        counters = PerfCounters()
        with MetricWorkerPool(graph, spec, parallel=parallel) as pool:
            pool.poison()
            config = SpreadingMetricConfig(
                delta=0.05, max_rounds=40, engine="parallel", seed=0,
                parallel=parallel,
            )
            result = compute_spreading_metric(
                graph,
                spec,
                config,
                rng=random.Random(0),
                counters=counters,
                pool=pool,
                spawn_pool=False,
            )
        assert result.lengths.tolist() == baseline.lengths.tolist()
        assert result.objective == baseline.objective
        assert counters.pool_fallbacks >= 1

    def test_parallel_map_serial_when_unconfigured(self):
        assert parallel_map(abs, [-1, -2, 3]) == [1, 2, 3]
        assert parallel_map(
            abs, [-1], parallel=ParallelConfig(workers=8)
        ) == [1]

    def test_parallel_map_falls_back_on_unpicklable_fn(self):
        counters = PerfCounters()
        square = lambda x: x * x  # noqa: E731 - unpicklable on purpose
        out = parallel_map(
            square,
            [1, 2, 3],
            parallel=ParallelConfig(workers=2),
            counters=counters,
        )
        assert out == [1, 4, 9]
        assert counters.pool_fallbacks == 1

    def test_parallel_map_raises_without_fallback(self):
        square = lambda x: x * x  # noqa: E731
        with pytest.raises(Exception):
            parallel_map(
                square,
                [1, 2, 3],
                parallel=ParallelConfig(workers=2, fallback=False),
            )


class TestParallelConfig:
    def test_rejects_bad_workers(self):
        with pytest.raises(ValueError):
            ParallelConfig(workers=0)

    def test_rejects_bad_chunk(self):
        with pytest.raises(ValueError):
            ParallelConfig(min_sources_per_task=0)

    def test_resolved_workers_defaults_to_cpu_count(self):
        assert ParallelConfig().resolved_workers() == CPUS
        assert ParallelConfig(workers=3).resolved_workers() == 3


class TestErrorPreservation:
    """Degradation must preserve the original failure, never swallow it
    (satellite of the fault-tolerance PR)."""

    def test_parallel_map_fallback_records_original_exception(self):
        counters = PerfCounters()
        square = lambda x: x * x  # noqa: E731 - unpicklable on purpose
        parallel_map(
            square,
            [1, 2],
            parallel=ParallelConfig(workers=2),
            counters=counters,
        )
        assert counters.pool_fallbacks == 1
        assert len(counters.degradations) == 1
        record = counters.degradations[0]
        assert record["action"] == "map-serial"
        assert record["site"] == "parallel_map"
        # The repr of the *original* pickling error, not a generic
        # "pool failed" message.
        assert "pickle" in record["cause"].lower()

    def test_exhausted_ladder_keeps_last_error(self, instance):
        from repro.core.faults import FaultPlan, FaultTolerance

        _, graph, spec = instance
        # Every attempt of every task fails: the ladder must exhaust and
        # keep the injected fault on last_error + the serial record.
        plan = FaultPlan.parse(
            ";".join(f"fail:task@attempt={k}" for k in range(10))
        )
        parallel = ParallelConfig(
            workers=2,
            min_sources_per_task=8,
            fault_plan=plan,
            tolerance=FaultTolerance(
                task_retries=0, backoff_base=0.0, respawn_limit=0
            ),
        )
        baseline = _metric(graph, spec, "scipy", seed=0)
        with MetricWorkerPool(graph, spec, parallel=parallel) as pool:
            result = _metric(
                graph, spec, "parallel", seed=0, parallel=parallel, pool=pool
            )
            assert pool.last_error is not None
            assert "injected fault" in str(pool.last_error)
        assert result.lengths.tolist() == baseline.lengths.tolist()

    def test_fallback_false_reraises_injected_fault(self, instance):
        from repro.core.faults import FaultPlan, FaultTolerance, InjectedFault

        _, graph, spec = instance
        plan = FaultPlan.parse(
            ";".join(f"fail:task@attempt={k}" for k in range(10))
        )
        parallel = ParallelConfig(
            workers=2,
            min_sources_per_task=8,
            fallback=False,
            fault_plan=plan,
            tolerance=FaultTolerance(
                task_retries=0, backoff_base=0.0, respawn_limit=0
            ),
        )
        with MetricWorkerPool(graph, spec, parallel=parallel) as pool:
            with pytest.raises(InjectedFault):
                _metric(
                    graph, spec, "parallel", seed=0,
                    parallel=parallel, pool=pool,
                )

    def test_poisoned_pool_preserves_cause(self, instance):
        _, graph, spec = instance
        parallel = ParallelConfig(workers=2, min_sources_per_task=8)
        with MetricWorkerPool(graph, spec, parallel=parallel) as pool:
            pool.poison()
            assert pool.last_error is not None
            assert "poisoned" in str(pool.last_error)
