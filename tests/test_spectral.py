"""Unit tests for spectral (Fiedler sweep-cut) bipartitioning."""

import numpy as np
import pytest

from repro.errors import PartitionError
from repro.hypergraph import Hypergraph
from repro.hypergraph.generators import (
    figure2_graph,
    figure2_hypergraph,
    planted_hierarchy_hypergraph,
)
from repro.partitioning.spectral import fiedler_vector, spectral_bipartition


class TestFiedlerVector:
    def test_orthogonal_to_constant(self):
        vector = fiedler_vector(figure2_graph())
        assert abs(vector.sum()) < 1e-6

    def test_separates_figure2_blocks(self):
        vector = fiedler_vector(figure2_graph())
        # the two level-1 blocks get opposite signs
        signs_block1 = {np.sign(vector[v]) for v in range(8)}
        signs_block2 = {np.sign(vector[v]) for v in range(8, 16)}
        assert len(signs_block1) == 1
        assert len(signs_block2) == 1
        assert signs_block1 != signs_block2

    def test_tiny_graph_rejected(self):
        from repro.hypergraph import Graph

        with pytest.raises(PartitionError):
            fiedler_vector(Graph(2, edges=[(0, 1)]))

    def test_large_instance_runs(self):
        from repro.hypergraph.expansion import clique_expansion

        h = planted_hierarchy_hypergraph(256, height=2, seed=0)
        vector = fiedler_vector(clique_expansion(h))
        assert vector.shape == (256,)


class TestSweepCut:
    def test_figure2_balanced_cut(self):
        h = figure2_hypergraph()
        side0, cut = spectral_bipartition(h, 8, 8, graph=figure2_graph())
        assert cut == 2.0
        assert side0 in ([0, 1, 2, 3, 4, 5, 6, 7],
                         [8, 9, 10, 11, 12, 13, 14, 15])

    def test_window_respected(self):
        h = planted_hierarchy_hypergraph(64, height=1, seed=2)
        side0, _cut = spectral_bipartition(h, 28, 36)
        assert 28 <= len(side0) <= 36

    def test_impossible_window_rejected(self):
        h = figure2_hypergraph()
        with pytest.raises(PartitionError):
            spectral_bipartition(h, 20, 30, graph=figure2_graph())

    def test_competitive_with_fm_on_planted(self):
        import random

        from repro.partitioning.fm import fm_bipartition

        h = planted_hierarchy_hypergraph(128, height=1, seed=4)
        spectral_side, spectral_cut = spectral_bipartition(h, 56, 72)
        _sides, fm_cut = fm_bipartition(h, 56, 72, rng=random.Random(0))
        assert spectral_cut <= max(3 * fm_cut, fm_cut + 10)
