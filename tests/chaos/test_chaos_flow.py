"""End-to-end chaos: ``flow_htp`` under faults equals the serial run."""

from __future__ import annotations

import pytest

from repro.core.faults import FaultPlan, FaultTolerance
from repro.core.flow_htp import FlowHTPConfig, flow_htp
from repro.core.parallel import ParallelConfig
from repro.core.spreading_metric import SpreadingMetricConfig
from repro.testing import check_cost_telescoping, check_partition_feasible

pytestmark = pytest.mark.chaos


def _config(engine, parallel=None):
    return FlowHTPConfig(
        iterations=1,
        seed=0,
        metric=SpreadingMetricConfig(delta=0.05, max_rounds=40, engine=engine),
        parallel=parallel,
    )


def test_flow_htp_under_faults_is_bit_identical(chaos_instance):
    """Whole-pipeline replay: crash + retry faults, identical partition."""
    hypergraph, spec, graph = chaos_instance
    baseline = flow_htp(hypergraph, spec, _config("scipy"), graph=graph)

    plan = FaultPlan.parse(
        "fail:task@dispatch=0,task=0;die:task@dispatch=3,task=0"
    )
    parallel = ParallelConfig(
        workers=2,
        min_sources_per_task=4,
        fault_plan=plan,
        tolerance=FaultTolerance(backoff_base=0.005),
        autoserial=False,
    )
    faulted = flow_htp(
        hypergraph, spec, _config("parallel", parallel), graph=graph
    )

    assert faulted.cost == baseline.cost
    assert faulted.iteration_costs == baseline.iteration_costs
    assert faulted.metric_objectives == baseline.metric_objectives
    assert [
        faulted.partition.leaf_of(v) for v in range(hypergraph.num_nodes)
    ] == [
        baseline.partition.leaf_of(v) for v in range(hypergraph.num_nodes)
    ]
    assert faulted.perf is not None
    # The fail fault surfaces as an InjectedFault (counted); the die
    # fault kills the worker process, so it shows up as a respawn.
    assert faulted.perf.faults_injected >= 1
    assert faulted.perf.pool_task_retries >= 1
    assert faulted.perf.pool_respawns >= 1

    check_partition_feasible(hypergraph, faulted.partition, spec)
    check_cost_telescoping(hypergraph, faulted.partition, spec)
