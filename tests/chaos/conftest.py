"""Shared fixtures for the chaos harness.

One small planted instance plus its fault-free spreading metric,
computed once per session with the serial scipy engine.  Every chaos
test replays the same computation through the parallel engine under an
injected :class:`FaultPlan` and asserts bit-identity against this
baseline — the determinism contract of the fault-tolerant pool.
"""

from __future__ import annotations

import random

import pytest

from repro.core.perf import PerfCounters
from repro.core.spreading_metric import (
    SpreadingMetricConfig,
    compute_spreading_metric,
)
from repro.htp.hierarchy import binary_hierarchy
from repro.hypergraph.expansion import to_graph
from repro.hypergraph.generators import planted_hierarchy_hypergraph

CHAOS_SEED = 0
CHAOS_DELTA = 0.05
CHAOS_MAX_ROUNDS = 40


@pytest.fixture(scope="session")
def chaos_instance():
    """(hypergraph, spec, graph) of the canonical chaos instance."""
    hypergraph = planted_hierarchy_hypergraph(
        64, height=2, seed=5, name="chaos64"
    )
    spec = binary_hierarchy(hypergraph.total_size(), height=2)
    graph = to_graph(hypergraph, rng=random.Random(CHAOS_SEED))
    return hypergraph, spec, graph


@pytest.fixture(scope="session")
def chaos_baseline(chaos_instance):
    """Fault-free serial metric — ground truth for bit-identity."""
    _, spec, graph = chaos_instance
    config = SpreadingMetricConfig(
        delta=CHAOS_DELTA,
        max_rounds=CHAOS_MAX_ROUNDS,
        engine="scipy",
        seed=CHAOS_SEED,
    )
    return compute_spreading_metric(
        graph, spec, config, rng=random.Random(CHAOS_SEED)
    )


def run_parallel_metric(chaos_instance, parallel):
    """The chaos instance's metric through the parallel engine.

    Returns ``(result, counters)``; ``parallel`` carries the fault plan
    and tolerance under test.
    """
    _, spec, graph = chaos_instance
    config = SpreadingMetricConfig(
        delta=CHAOS_DELTA,
        max_rounds=CHAOS_MAX_ROUNDS,
        engine="parallel",
        seed=CHAOS_SEED,
        parallel=parallel,
    )
    counters = PerfCounters()
    result = compute_spreading_metric(
        graph,
        spec,
        config,
        rng=random.Random(CHAOS_SEED),
        counters=counters,
    )
    return result, counters
