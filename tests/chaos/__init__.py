"""Chaos harness: FLOW runs under injected faults must stay bit-identical."""
