"""Cluster chaos drills: kill workers, kill routers, cut the network.

Every drill runs real ``htp route`` / ``htp serve --join`` subprocesses
(own interpreters, own sockets, **private** per-worker checkpoint and
cache directories — no shared filesystem) and asserts the cluster's
durability promises hold bit-identically:

1. SIGKILL the worker that owns a slow job mid-solve: the router
   re-places the job on the survivor, which resumes from the dead
   worker's *replicated* checkpoint frames — not a shared directory —
   and lands a result identical to an undisturbed solve.
2. SIGKILL the router mid-solve: its WAL carries the placement across
   a same-port restart.
3. SIGKILL the PRIMARY router with a warm standby tailing its WAL: the
   standby takes over (bumped fencing epoch), the worker's agent
   retargets, and the job finishes with the same result hash.
4. Partition the primary behind a network fault proxy: the standby
   takes over, and the still-running zombie primary's forwards are
   refused by epoch-fenced workers.
"""

from __future__ import annotations

import os
import socket
import subprocess
import sys
import time

import pytest

from repro.core.faults import FaultTolerance
from repro.htp.hierarchy import binary_hierarchy
from repro.hypergraph.generators import planted_hierarchy_hypergraph
from repro.service import JobSpec, ServiceClient, ServiceClientError, run_spec
from repro.testing import FaultProxy, NetFaultPlan

pytestmark = pytest.mark.chaos

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(__file__)))


def _free_port() -> int:
    with socket.socket(socket.AF_INET, socket.SOCK_STREAM) as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def _env():
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
    return env


def _spawn(args):
    return subprocess.Popen(
        [sys.executable, "-m", "repro.cli", *args],
        env=_env(),
        cwd=REPO_ROOT,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )


def _spawn_router(port, tmp_path, name="router", standby_of=None,
                  epoch_timeout=None):
    args = [
        "route",
        "--host", "127.0.0.1",
        "--port", str(port),
        "--journal", str(tmp_path / f"wal-{name}"),
        "--heartbeat-interval", "0.5",
    ]
    if standby_of is not None:
        args += ["--standby", standby_of]
    if epoch_timeout is not None:
        args += ["--epoch-timeout", str(epoch_timeout)]
    return _spawn(args)


def _spawn_worker(port, router_url, worker_id, tmp_path):
    # Every worker keeps PRIVATE scratch: checkpoint frames cross the
    # wire via replication, never via a shared directory.
    return _spawn(
        [
            "serve",
            "--host", "127.0.0.1",
            "--port", str(port),
            "--max-concurrency", "1",
            "--join", router_url,
            "--worker-id", worker_id,
            "--journal", str(tmp_path / f"wal-{worker_id}"),
            "--cache-dir", str(tmp_path / f"cache-{worker_id}"),
            "--checkpoint-dir", str(tmp_path / f"ckpt-{worker_id}"),
            "--fsync", "always",
        ]
    )


def _wait_healthy(client, process, timeout=30.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if process.poll() is not None:
            raise AssertionError(
                f"process exited early with code {process.returncode}"
            )
        try:
            client.healthz()
            return
        except ServiceClientError:
            time.sleep(0.1)
    raise AssertionError("process never became healthy")


def _wait_workers_alive(client, count, timeout=30.0):
    deadline = time.monotonic() + timeout
    workers = []
    while time.monotonic() < deadline:
        try:
            workers = client._request("GET", "/workers")["workers"]
        except ServiceClientError:
            workers = []
        alive = [w for w in workers if w["state"] == "alive"]
        if len(alive) >= count:
            return
        time.sleep(0.1)
    raise AssertionError(f"never saw {count} alive workers: {workers}")


def _wait_role(client, role, timeout=60.0):
    deadline = time.monotonic() + timeout
    seen = None
    while time.monotonic() < deadline:
        try:
            seen = client.healthz()["role"]
        except ServiceClientError:
            seen = None
        if seen == role:
            return
        time.sleep(0.1)
    raise AssertionError(f"never saw role {role!r} (last: {seen!r})")


def _wait_done(client, job_id, timeout=240.0):
    """Like client.wait, but tolerant of 503s while a standby warms up."""
    deadline = time.monotonic() + timeout
    status = None
    while time.monotonic() < deadline:
        try:
            status = client.status(job_id)
        except ServiceClientError:
            time.sleep(0.2)
            continue
        if status["state"] in ("done", "failed", "cancelled"):
            return status
        time.sleep(0.1)
    raise AssertionError(f"job {job_id} never finished (last: {status})")


def _slow_spec():
    # The pure-python engine on 384 nodes runs for seconds (checkpointing
    # every round) — long enough for a SIGKILL to land mid-solve AND for
    # the heartbeat-cadence replication to ship frames to the peer first.
    netlist = planted_hierarchy_hypergraph(384, height=2, seed=2)
    hierarchy = binary_hierarchy(netlist.total_size(), height=2)
    return JobSpec.from_parts(
        netlist,
        hierarchy,
        {
            "iterations": 2,
            "constructions_per_metric": 2,
            "engine": "python",
            "max_rounds": 32,
            "delta": 0.3,
            "seed": 7,
        },
    )


def _semantic(doc):
    # Wall-clock and counters legitimately differ between a resumed and
    # an undisturbed run; nothing the solver computed may.
    return {
        k: v for k, v in doc.items() if k not in ("runtime_seconds", "perf")
    }


def _tolerant_client(url):
    return ServiceClient(
        url,
        timeout=10,
        tolerance=FaultTolerance(task_retries=3, backoff_base=0.05),
    )


class TestKillWorkerMidSolve:
    def test_job_survives_its_worker(self, tmp_path):
        router_port = _free_port()
        router_url = f"http://127.0.0.1:{router_port}"
        client = _tolerant_client(router_url)

        slow = _slow_spec()
        router = _spawn_router(router_port, tmp_path)
        workers, worker_ports = {}, {}
        try:
            _wait_healthy(client, router)
            for worker_id in ("w0", "w1"):
                worker_ports[worker_id] = _free_port()
                workers[worker_id] = _spawn_worker(
                    worker_ports[worker_id], router_url, worker_id, tmp_path
                )
            _wait_workers_alive(client, 2)

            submitted = client.submit_spec(slow)
            victim_id = submitted["worker"]
            assert victim_id in workers
            survivor = ({"w0", "w1"} - {victim_id}).pop()

            # The kill gate: the victim must have journaled progress AND
            # the survivor must hold a replicated copy of at least one
            # frame — its PRIVATE checkpoint root is all it can resume
            # from, there is no shared scratch to lean on.
            spec_hash = submitted["spec_hash"]
            victim_ckpt = tmp_path / f"ckpt-{victim_id}" / spec_hash
            survivor_ckpt = tmp_path / f"ckpt-{survivor}" / spec_hash
            kill_deadline = time.monotonic() + 60
            while not (
                list(victim_ckpt.glob("ckpt-*.json"))
                and list(survivor_ckpt.glob("ckpt-*.json"))
            ):
                assert time.monotonic() < kill_deadline, (
                    "no replicated checkpoint appeared before the kill "
                    f"window closed (victim: "
                    f"{list(victim_ckpt.glob('ckpt-*.json'))}, survivor: "
                    f"{list(survivor_ckpt.glob('ckpt-*.json'))})"
                )
                status = client.status(submitted["job_id"])
                assert status["state"] in ("queued", "running"), (
                    f"slow job finished too fast to kill: {status['state']}"
                )
                time.sleep(0.02)

            # The pusher's own ledger: replication happened and was
            # counted on the worker that shipped the frames.
            victim_metrics = ServiceClient(
                f"http://127.0.0.1:{worker_ports[victim_id]}", timeout=10
            ).metricsz()
            assert victim_metrics["perf"]["ckpt_replications"] >= 1

            workers[victim_id].kill()  # SIGKILL: no goodbye, no flush
            workers[victim_id].wait(timeout=10)

            # The router's failure ladder re-places the job; the
            # survivor resumes from the frames replication pushed to it.
            finished = client.wait(submitted["job_id"], timeout=240)
            assert finished["state"] == "done", finished.get("error")
            assert finished["worker"] == survivor
            assert finished["reroutes"] >= 1

            served = client.result(submitted["job_id"])
            reference = run_spec(slow)
            assert _semantic(served["result"]) == _semantic(
                reference.to_dict()
            )

            metrics = client.metricsz()
            assert metrics["cluster"]["reroutes"] >= 1
            assert metrics["cluster"]["workers"]["dead"] == 1
        finally:
            for process in (router, *workers.values()):
                if process.poll() is None:
                    process.kill()
                    process.wait(timeout=10)

    def test_router_restart_reattaches_in_flight_jobs(self, tmp_path):
        """Kill the ROUTER mid-solve instead: its WAL must carry the
        placement across restart, and the reborn router re-adopts the
        job without disturbing the worker still solving it."""
        router_port = _free_port()
        router_url = f"http://127.0.0.1:{router_port}"
        client = _tolerant_client(router_url)

        slow = _slow_spec()
        router = _spawn_router(router_port, tmp_path)
        worker = None
        try:
            _wait_healthy(client, router)
            worker = _spawn_worker(_free_port(), router_url, "w0", tmp_path)
            _wait_workers_alive(client, 1)

            submitted = client.submit_spec(slow)
            assert submitted["worker"] == "w0"

            router.kill()
            router.wait(timeout=10)

            # Same port, same WAL: the worker's heartbeat loop rejoins
            # on its own once the listener is back.
            router = _spawn_router(router_port, tmp_path)
            _wait_healthy(client, router)
            _wait_workers_alive(client, 1)

            listed = {job["job_id"] for job in client.jobs()["jobs"]}
            assert submitted["job_id"] in listed

            finished = client.wait(submitted["job_id"], timeout=240)
            assert finished["state"] == "done", finished.get("error")

            served = client.result(submitted["job_id"])
            reference = run_spec(slow)
            assert _semantic(served["result"]) == _semantic(
                reference.to_dict()
            )
        finally:
            processes = [router] + ([worker] if worker else [])
            for process in processes:
                if process.poll() is None:
                    process.kill()
                    process.wait(timeout=10)


class TestStandbyTakeover:
    def test_sigkill_primary_promotes_the_standby(self, tmp_path):
        """SIGKILL the primary router mid-solve: the warm standby tails
        its WAL, takes over with a bumped fencing epoch, the worker's
        agent retargets, and the job lands the same result hash."""
        primary_port, standby_port = _free_port(), _free_port()
        primary_url = f"http://127.0.0.1:{primary_port}"
        standby_url = f"http://127.0.0.1:{standby_port}"
        primary_client = _tolerant_client(primary_url)
        standby_client = _tolerant_client(standby_url)

        slow = _slow_spec()
        primary = _spawn_router(primary_port, tmp_path, name="primary")
        standby = worker = None
        try:
            _wait_healthy(primary_client, primary)
            standby = _spawn_router(
                standby_port, tmp_path, name="standby",
                standby_of=primary_url, epoch_timeout=2.0,
            )
            _wait_role(standby_client, "standby")
            worker = _spawn_worker(_free_port(), primary_url, "w0", tmp_path)
            _wait_workers_alive(primary_client, 1)

            # The standby must have announced itself (so the worker's
            # agent learns where to fail over) before the primary dies.
            deadline = time.monotonic() + 30
            while (
                primary_client.metricsz()["cluster"]["standby"]
                != standby_url
            ):
                assert time.monotonic() < deadline, (
                    "standby never announced itself to the primary"
                )
                time.sleep(0.1)
            # One more heartbeat round-trip so the worker has heard it.
            time.sleep(1.5)

            submitted = primary_client.submit_spec(slow)
            assert submitted["worker"] == "w0"
            job_id = submitted["job_id"]

            # Let the solve make journaled progress first.
            ckpt_dir = tmp_path / "ckpt-w0" / submitted["spec_hash"]
            kill_deadline = time.monotonic() + 60
            while not list(ckpt_dir.glob("ckpt-*.json")):
                assert time.monotonic() < kill_deadline
                time.sleep(0.05)

            primary.kill()  # SIGKILL: the WAL tail is all that survives
            primary.wait(timeout=10)

            _wait_role(standby_client, "router")
            finished = _wait_done(standby_client, job_id)
            assert finished["state"] == "done", finished.get("error")

            served = standby_client.result(job_id)
            reference = run_spec(slow)
            assert _semantic(served["result"]) == _semantic(
                reference.to_dict()
            )
            metrics = standby_client.metricsz()["cluster"]
            assert metrics["epoch"] >= 2
            assert metrics["epoch_bumps"] >= 1
        finally:
            for process in (primary, standby, worker):
                if process is not None and process.poll() is None:
                    process.kill()
                    process.wait(timeout=10)


class TestNetworkPartition:
    def test_partitioned_primary_is_fenced(self, tmp_path):
        """Cut the wire to the primary with the fault proxy: the standby
        takes over and the zombie primary — alive, but fenced — has its
        forwards refused by workers that adopted the newer epoch."""
        primary_port = _free_port()
        primary = _spawn_router(primary_port, tmp_path, name="primary")
        proxy = FaultProxy(
            "127.0.0.1", primary_port, link="cluster->primary"
        ).start()
        zombie_client = _tolerant_client(f"http://127.0.0.1:{primary_port}")
        proxied_client = _tolerant_client(proxy.url)

        standby_port = _free_port()
        standby_url = f"http://127.0.0.1:{standby_port}"
        standby_client = _tolerant_client(standby_url)

        standby = worker = None
        try:
            _wait_healthy(proxied_client, primary)
            # Everyone reaches the primary THROUGH the proxy, so the
            # partition cuts them all off at once; the zombie keeps its
            # direct port for the fencing probe below.
            standby = _spawn_router(
                standby_port, tmp_path, name="standby",
                standby_of=proxy.url, epoch_timeout=2.0,
            )
            _wait_role(standby_client, "standby")
            worker = _spawn_worker(_free_port(), proxy.url, "w0", tmp_path)
            _wait_workers_alive(proxied_client, 1)

            deadline = time.monotonic() + 30
            while (
                proxied_client.metricsz()["cluster"]["standby"]
                != standby_url
            ):
                assert time.monotonic() < deadline
                time.sleep(0.1)
            time.sleep(1.5)  # one heartbeat so the worker hears it too

            # Drop the partition on the live link.
            proxy.plan = NetFaultPlan.parse("partition:cluster->primary")

            _wait_role(standby_client, "router")
            assert proxy.injected, "the partition never bit live traffic"
            _wait_workers_alive(standby_client, 1, timeout=60)

            # The cluster works under new management...
            spec = _slow_spec()
            submitted = standby_client.submit_spec(spec)
            finished = _wait_done(standby_client, submitted["job_id"])
            assert finished["state"] == "done", finished.get("error")
            served = standby_client.result(submitted["job_id"])
            assert _semantic(served["result"]) == _semantic(
                run_spec(spec).to_dict()
            )

            # ...and the zombie primary, still running and still
            # believing it owns the worker, is refused: its forwards
            # carry the old fencing epoch.
            netlist = planted_hierarchy_hypergraph(32, height=2, seed=5)
            other = JobSpec.from_parts(
                netlist,
                binary_hierarchy(netlist.total_size(), height=2),
                {"iterations": 1, "engine": "python", "seed": 5},
            )
            with pytest.raises(ServiceClientError) as excinfo:
                zombie_client.submit_spec(other)
            assert "stale router epoch" in str(excinfo.value)
        finally:
            proxy.stop()
            for process in (primary, standby, worker):
                if process is not None and process.poll() is None:
                    process.kill()
                    process.wait(timeout=10)
