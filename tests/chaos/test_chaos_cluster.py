"""SIGKILL a cluster worker mid-solve; the job finishes elsewhere.

The cluster-tier durability drill: a real ``htp route`` subprocess
fronts two real ``htp serve --join`` workers (each its own interpreter
and sockets, sharing a checkpoint directory as co-located workers
would share a filesystem).  The worker that owns a slow job is killed
with ``SIGKILL`` mid-solve.  The router must notice via its failure
ladder, re-place the job on the survivor, and the survivor must resume
from the victim's newest checkpoint — landing a result bit-identical
to an undisturbed single-box solve of the same spec.
"""

from __future__ import annotations

import os
import signal
import socket
import subprocess
import sys
import time

import pytest

from repro.core.faults import FaultTolerance
from repro.htp.hierarchy import binary_hierarchy
from repro.hypergraph.generators import planted_hierarchy_hypergraph
from repro.service import JobSpec, ServiceClient, ServiceClientError, run_spec

pytestmark = pytest.mark.chaos

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(__file__)))


def _free_port() -> int:
    with socket.socket(socket.AF_INET, socket.SOCK_STREAM) as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def _env():
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
    return env


def _spawn_router(port, tmp_path):
    return subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "route",
            "--host", "127.0.0.1",
            "--port", str(port),
            "--journal", str(tmp_path / "router-wal"),
            "--heartbeat-interval", "0.5",
        ],
        env=_env(),
        cwd=REPO_ROOT,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )


def _spawn_worker(port, router_url, worker_id, tmp_path):
    # Workers share the checkpoint directory (co-located scratch space),
    # so a survivor can resume a dead peer's half-finished solve.
    return subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "serve",
            "--host", "127.0.0.1",
            "--port", str(port),
            "--max-concurrency", "1",
            "--join", router_url,
            "--worker-id", worker_id,
            "--journal", str(tmp_path / f"wal-{worker_id}"),
            "--cache-dir", str(tmp_path / f"cache-{worker_id}"),
            "--checkpoint-dir", str(tmp_path / "ckpt"),
            "--fsync", "always",
        ],
        env=_env(),
        cwd=REPO_ROOT,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )


def _wait_healthy(client, process, timeout=30.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if process.poll() is not None:
            raise AssertionError(
                f"process exited early with code {process.returncode}"
            )
        try:
            client.healthz()
            return
        except ServiceClientError:
            time.sleep(0.1)
    raise AssertionError("process never became healthy")


def _wait_workers_alive(client, count, timeout=30.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        workers = client._request("GET", "/workers")["workers"]
        alive = [w for w in workers if w["state"] == "alive"]
        if len(alive) >= count:
            return
        time.sleep(0.1)
    raise AssertionError(f"never saw {count} alive workers: {workers}")


def _slow_spec():
    # Same recipe as the single-box chaos drill: the pure-python engine
    # on 64 nodes runs long enough for a SIGKILL to land mid-solve,
    # checkpointing every round.
    netlist = planted_hierarchy_hypergraph(64, height=2, seed=2)
    hierarchy = binary_hierarchy(netlist.total_size(), height=2)
    return JobSpec.from_parts(
        netlist,
        hierarchy,
        {
            "iterations": 2,
            "constructions_per_metric": 2,
            "engine": "python",
            "max_rounds": 32,
            "delta": 0.3,
            "seed": 7,
        },
    )


class TestKillWorkerMidSolve:
    def test_job_survives_its_worker(self, tmp_path):
        router_port = _free_port()
        router_url = f"http://127.0.0.1:{router_port}"
        tolerance = FaultTolerance(task_retries=3, backoff_base=0.05)
        client = ServiceClient(router_url, timeout=10, tolerance=tolerance)

        slow = _slow_spec()
        router = _spawn_router(router_port, tmp_path)
        workers = {}
        try:
            _wait_healthy(client, router)
            for worker_id in ("w0", "w1"):
                workers[worker_id] = _spawn_worker(
                    _free_port(), router_url, worker_id, tmp_path
                )
            _wait_workers_alive(client, 2)

            submitted = client.submit_spec(slow)
            victim_id = submitted["worker"]
            assert victim_id in workers

            # Let the solve make journaled progress before pulling the
            # plug: at least one checkpoint must exist to resume from.
            ckpt_dir = tmp_path / "ckpt" / submitted["spec_hash"]
            kill_deadline = time.monotonic() + 60
            while not list(ckpt_dir.glob("ckpt-*.json")):
                assert time.monotonic() < kill_deadline, (
                    "no checkpoint appeared before the kill window closed"
                )
                status = client.status(submitted["job_id"])
                assert status["state"] in ("queued", "running"), (
                    f"slow job finished too fast to kill: {status['state']}"
                )
                time.sleep(0.02)

            workers[victim_id].kill()  # SIGKILL: no goodbye, no flush
            workers[victim_id].wait(timeout=10)

            # The router's status-poll ladder plus heartbeat monitor must
            # declare the victim dead and re-place the job; the survivor
            # resumes from the newest checkpoint on the shared scratch.
            finished = client.wait(submitted["job_id"], timeout=240)
            assert finished["state"] == "done", finished.get("error")
            survivor = ({"w0", "w1"} - {victim_id}).pop()
            assert finished["worker"] == survivor
            assert finished["reroutes"] >= 1

            served = client.result(submitted["job_id"])
            reference = run_spec(slow)

            # Wall-clock and counters legitimately differ between a
            # resumed and an undisturbed run; nothing the solver computed
            # may.
            def semantic(doc):
                return {
                    k: v
                    for k, v in doc.items()
                    if k not in ("runtime_seconds", "perf")
                }

            assert semantic(served["result"]) == semantic(
                reference.to_dict()
            )

            metrics = client.metricsz()
            assert metrics["cluster"]["reroutes"] >= 1
            assert metrics["cluster"]["workers"]["dead"] == 1
        finally:
            for process in (router, *workers.values()):
                if process.poll() is None:
                    process.kill()
                    process.wait(timeout=10)

    def test_router_restart_reattaches_in_flight_jobs(self, tmp_path):
        """Kill the ROUTER mid-solve instead: its WAL must carry the
        placement across restart, and the reborn router re-adopts the
        job without disturbing the worker still solving it."""
        router_port = _free_port()
        router_url = f"http://127.0.0.1:{router_port}"
        tolerance = FaultTolerance(task_retries=3, backoff_base=0.05)
        client = ServiceClient(router_url, timeout=10, tolerance=tolerance)

        slow = _slow_spec()
        router = _spawn_router(router_port, tmp_path)
        worker = None
        try:
            _wait_healthy(client, router)
            worker = _spawn_worker(_free_port(), router_url, "w0", tmp_path)
            _wait_workers_alive(client, 1)

            submitted = client.submit_spec(slow)
            assert submitted["worker"] == "w0"

            router.kill()
            router.wait(timeout=10)

            # Same port, same WAL: the worker's heartbeat loop rejoins
            # on its own once the listener is back.
            router = _spawn_router(router_port, tmp_path)
            _wait_healthy(client, router)
            _wait_workers_alive(client, 1)

            listed = {job["job_id"] for job in client.jobs()["jobs"]}
            assert submitted["job_id"] in listed

            finished = client.wait(submitted["job_id"], timeout=240)
            assert finished["state"] == "done", finished.get("error")

            served = client.result(submitted["job_id"])
            reference = run_spec(slow)

            def semantic(doc):
                return {
                    k: v
                    for k, v in doc.items()
                    if k not in ("runtime_seconds", "perf")
                }

            assert semantic(served["result"]) == semantic(
                reference.to_dict()
            )
        finally:
            processes = [router] + ([worker] if worker else [])
            for process in processes:
                if process.poll() is None:
                    process.kill()
                    process.wait(timeout=10)
