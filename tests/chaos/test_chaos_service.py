"""SIGKILL a real journaled server mid-solve; restart; lose nothing.

This is the full-stack durability drill the PR promises: an actual
``htp serve --journal`` subprocess (own interpreter, own event loop,
real sockets) is killed with ``SIGKILL`` — no atexit handlers, no
graceful shutdown — while a slow job is mid-solve.  A second server
started over the same directories must re-serve the finished job from
the content-addressed cache without re-running it and carry the
interrupted job to a result bit-identical to an uninterrupted solve.
"""

from __future__ import annotations

import os
import signal
import socket
import subprocess
import sys
import time

import pytest

from repro.core.faults import FaultTolerance
from repro.htp.hierarchy import binary_hierarchy
from repro.hypergraph.generators import planted_hierarchy_hypergraph
from repro.service import JobSpec, ServiceClient, ServiceClientError, run_spec

pytestmark = pytest.mark.chaos

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(__file__)))


def _free_port() -> int:
    with socket.socket(socket.AF_INET, socket.SOCK_STREAM) as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def _spawn_server(port, tmp_path):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
    return subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.cli",
            "serve",
            "--host",
            "127.0.0.1",
            "--port",
            str(port),
            "--max-concurrency",
            "1",
            "--journal",
            str(tmp_path / "wal"),
            "--cache-dir",
            str(tmp_path / "cache"),
            "--checkpoint-dir",
            str(tmp_path / "ckpt"),
            "--fsync",
            "always",
        ],
        env=env,
        cwd=REPO_ROOT,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )


def _wait_healthy(client, process, timeout=30.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if process.poll() is not None:
            raise AssertionError(
                f"server exited early with code {process.returncode}"
            )
        try:
            client.healthz()
            return
        except ServiceClientError:
            time.sleep(0.1)
    raise AssertionError("server never became healthy")


def _fast_spec():
    netlist = planted_hierarchy_hypergraph(32, height=2, seed=1)
    hierarchy = binary_hierarchy(netlist.total_size(), height=2)
    return JobSpec.from_parts(
        netlist,
        hierarchy,
        {"iterations": 1, "constructions_per_metric": 1, "max_rounds": 8},
    )


def _slow_spec():
    # The pure-python engine on a 64-node instance runs long enough for
    # a SIGKILL to land mid-solve, with checkpoints every round.
    netlist = planted_hierarchy_hypergraph(64, height=2, seed=2)
    hierarchy = binary_hierarchy(netlist.total_size(), height=2)
    return JobSpec.from_parts(
        netlist,
        hierarchy,
        {
            "iterations": 2,
            "constructions_per_metric": 2,
            "engine": "python",
            "max_rounds": 32,
            "delta": 0.3,
            "seed": 7,
        },
    )


class TestKillNineAndRestart:
    def test_no_accepted_job_is_lost(self, tmp_path):
        port = _free_port()
        url = f"http://127.0.0.1:{port}"
        tolerance = FaultTolerance(task_retries=3, backoff_base=0.05)
        client = ServiceClient(url, timeout=10, tolerance=tolerance)

        fast, slow = _fast_spec(), _slow_spec()
        process = _spawn_server(port, tmp_path)
        try:
            _wait_healthy(client, process)

            # Phase 1: one job finishes, one is caught mid-solve.
            fast_job = client.submit_spec(fast)
            done = client.wait(fast_job["job_id"], timeout=60)
            assert done["state"] == "done"
            first_result = client.result(fast_job["job_id"])

            slow_job = client.submit_spec(slow)
            ckpt_dir = tmp_path / "ckpt" / slow_job["spec_hash"]
            kill_deadline = time.monotonic() + 60
            while not list(ckpt_dir.glob("ckpt-*.json")):
                assert time.monotonic() < kill_deadline, (
                    "no checkpoint appeared before the kill window closed"
                )
                status = client.status(slow_job["job_id"])
                assert status["state"] in ("queued", "running"), (
                    f"slow job finished too fast to kill: {status['state']}"
                )
                time.sleep(0.02)

            process.kill()  # SIGKILL: no goodbye, no flush
            process.wait(timeout=10)
        finally:
            if process.poll() is None:
                process.kill()
                process.wait(timeout=10)

        # Phase 2: a fresh server over the same dirs recovers everything.
        process = _spawn_server(port, tmp_path)
        try:
            _wait_healthy(client, process)

            listing = client.jobs()["jobs"]
            listed_ids = {job["job_id"] for job in listing}
            assert fast_job["job_id"] in listed_ids
            assert slow_job["job_id"] in listed_ids

            # The finished job came back from the cache, not the solver.
            recovered = client.status(fast_job["job_id"])
            assert recovered["state"] == "done"
            assert recovered["recovered"] is True
            assert recovered["cached"] is True
            assert client.result(fast_job["job_id"]) == first_result

            # The interrupted job resumes and lands bit-identical to an
            # uninterrupted local solve of the same spec.
            finished = client.wait(slow_job["job_id"], timeout=240)
            assert finished["state"] == "done", finished.get("error")
            served = client.result(slow_job["job_id"])
            reference = run_spec(slow)
            # Wall-clock and counters legitimately differ between a
            # resumed and an uninterrupted run; everything the solver
            # computed must not.
            def semantic(doc):
                return {
                    k: v
                    for k, v in doc.items()
                    if k not in ("runtime_seconds", "perf")
                }

            assert semantic(served["result"]) == semantic(
                reference.to_dict()
            )

            metrics = client.metricsz()
            assert metrics["perf"]["journal_replayed"] > 0
        finally:
            process.kill()
            process.wait(timeout=10)

    def test_restart_with_empty_dirs_is_clean(self, tmp_path):
        port = _free_port()
        client = ServiceClient(f"http://127.0.0.1:{port}", timeout=10)
        process = _spawn_server(port, tmp_path)
        try:
            _wait_healthy(client, process)
            assert client.jobs()["jobs"] == []
        finally:
            process.kill()
            process.wait(timeout=10)
