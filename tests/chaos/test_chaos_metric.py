"""Chaos tests: spreading metric under injected faults is bit-identical.

Every test replays the canonical instance through the parallel engine
with a deterministic :class:`FaultPlan` and asserts (a) the result is
bit-identical to the fault-free serial baseline and (b) the degradation
ladder recorded the expected transitions in :class:`PerfCounters`.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.faults import FaultPlan, FaultTolerance
from repro.core.parallel import ParallelConfig
from repro.testing import check_metric_result

from tests.chaos.conftest import run_parallel_metric

pytestmark = pytest.mark.chaos


def _assert_bit_identical(result, baseline):
    assert np.array_equal(result.lengths, baseline.lengths)
    assert result.objective == baseline.objective
    assert result.rounds == baseline.rounds
    assert result.satisfied == baseline.satisfied


def _parallel(plan=None, tolerance=None):
    # autoserial=False: chaos tests must exercise real dispatches even
    # on a 1-core box — the fault-injection points live in the workers.
    return ParallelConfig(
        workers=2,
        min_sources_per_task=8,
        fault_plan=plan,
        tolerance=tolerance or FaultTolerance(backoff_base=0.005),
        autoserial=False,
    )


def test_clean_parallel_matches_serial(chaos_instance, chaos_baseline):
    """Control: no faults, parallel == serial, no ladder activity."""
    result, counters = run_parallel_metric(chaos_instance, _parallel())
    _assert_bit_identical(result, chaos_baseline)
    assert counters.pool_dispatches >= 1
    assert counters.pool_task_retries == 0
    assert counters.pool_respawns == 0
    assert counters.pool_fallbacks == 0


def test_task_failure_is_retried(chaos_instance, chaos_baseline):
    """A worker task raising once is retried and the run converges."""
    plan = FaultPlan.parse("fail:task@dispatch=0,task=0")
    result, counters = run_parallel_metric(chaos_instance, _parallel(plan))
    _assert_bit_identical(result, chaos_baseline)
    assert counters.faults_injected >= 1
    assert counters.pool_task_retries >= 1
    assert counters.pool_fallbacks == 0
    actions = [record["action"] for record in counters.degradations]
    assert "retry" in actions
    # The injected exception is preserved on the degradation record.
    retry = next(r for r in counters.degradations if r["action"] == "retry")
    assert "InjectedFault" in retry["cause"]


def test_worker_crash_respawns_pool(chaos_instance, chaos_baseline):
    """A dying worker (os._exit) is replaced; the run stays identical."""
    plan = FaultPlan.parse("die:task@dispatch=0,task=0")
    result, counters = run_parallel_metric(chaos_instance, _parallel(plan))
    _assert_bit_identical(result, chaos_baseline)
    assert counters.pool_respawns >= 1
    assert counters.pool_fallbacks == 0
    actions = [record["action"] for record in counters.degradations]
    assert "respawn" in actions


def test_hang_past_deadline_is_recovered(chaos_instance, chaos_baseline):
    """A task hanging past the deadline is cancelled and re-run."""
    tolerance = FaultTolerance(task_deadline=0.75, backoff_base=0.005)
    plan = FaultPlan.parse("hang:task@dispatch=0,task=0,duration=5")
    result, counters = run_parallel_metric(
        chaos_instance, _parallel(plan, tolerance)
    )
    _assert_bit_identical(result, chaos_baseline)
    assert counters.pool_task_retries >= 1
    assert counters.pool_respawns >= 1
    assert counters.pool_fallbacks == 0


def test_poisoned_chunk_is_repaired(chaos_instance, chaos_baseline):
    """Corrupted shared-memory CSR weights are detected and repaired."""
    plan = FaultPlan.parse("corrupt:task@dispatch=1,task=0")
    result, counters = run_parallel_metric(chaos_instance, _parallel(plan))
    _assert_bit_identical(result, chaos_baseline)
    assert counters.pool_corruptions >= 1
    assert counters.pool_fallbacks == 0
    actions = [record["action"] for record in counters.degradations]
    assert "repair" in actions


def test_dispatch_fault_degrades_one_chunk(chaos_instance, chaos_baseline):
    """A coordinator-side dispatch fault runs that chunk in-process."""
    plan = FaultPlan.parse("fail:dispatch@dispatch=0")
    result, counters = run_parallel_metric(chaos_instance, _parallel(plan))
    _assert_bit_identical(result, chaos_baseline)
    assert counters.pool_fallbacks >= 1
    actions = [record["action"] for record in counters.degradations]
    assert "dispatch-serial" in actions


def test_fault_storm_walks_full_ladder(chaos_instance, chaos_baseline):
    """Faults on every attempt exhaust retry -> respawn -> shrink -> serial.

    The pool degrades all the way to the serial path, yet the final
    metric is still bit-identical to the baseline — the ladder's bottom
    rung is the fault-free coordinator loop.
    """
    tolerance = FaultTolerance(
        task_retries=1, backoff_base=0.001, respawn_limit=1
    )
    plan = FaultPlan.parse(
        ";".join(f"fail:task@attempt={k}" for k in range(8))
    )
    result, counters = run_parallel_metric(
        chaos_instance, _parallel(plan, tolerance)
    )
    _assert_bit_identical(result, chaos_baseline)
    actions = [record["action"] for record in counters.degradations]
    for expected in ("retry", "respawn", "shrink", "serial"):
        assert expected in actions, f"missing ladder action {expected!r}"
    assert counters.pool_task_retries >= 1
    assert counters.pool_respawns >= 1
    assert counters.pool_shrinks >= 1
    assert counters.pool_fallbacks >= 1


def test_probabilistic_plan_is_deterministic_and_identical(
    chaos_instance, chaos_baseline
):
    """A seeded probabilistic storm injects the same faults every run."""
    tolerance = FaultTolerance(backoff_base=0.001)
    plan = FaultPlan.parse("fail:task@p=0.6", seed=123)
    first, counters_a = run_parallel_metric(
        chaos_instance, _parallel(plan, tolerance)
    )
    second, counters_b = run_parallel_metric(
        chaos_instance, _parallel(plan, tolerance)
    )
    _assert_bit_identical(first, chaos_baseline)
    _assert_bit_identical(second, chaos_baseline)
    assert counters_a.faults_injected == counters_b.faults_injected
    assert counters_a.pool_task_retries == counters_b.pool_task_retries
    assert counters_a.faults_injected >= 1


def test_faulted_result_passes_invariants(chaos_instance, chaos_baseline):
    """The recovered metric satisfies the full invariant battery."""
    _, spec, graph = chaos_instance
    plan = FaultPlan.parse("fail:task@dispatch=0,task=1;die:task@dispatch=2,task=0")
    result, _counters = run_parallel_metric(chaos_instance, _parallel(plan))
    _assert_bit_identical(result, chaos_baseline)
    check_metric_result(graph, spec, result)
