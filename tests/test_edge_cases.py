"""Degenerate and adversarial inputs through the full pipeline."""

import random

import pytest

from repro.core.flow_htp import FlowHTPConfig, flow_htp
from repro.core.spreading_metric import (
    SpreadingMetricConfig,
    compute_spreading_metric,
)
from repro.errors import HypergraphError
from repro.htp.cost import total_cost
from repro.htp.hierarchy import HierarchySpec, binary_hierarchy
from repro.htp.validate import check_partition
from repro.hypergraph import Graph, Hypergraph
from repro.hypergraph.expansion import to_graph
from repro.hypergraph.generators import grid_hypergraph
from repro.partitioning.gfm import gfm_partition
from repro.partitioning.rfm import rfm_partition


class TestDisconnectedCircuits:
    @pytest.fixture
    def islands(self):
        """Four disconnected 6-cliques (24 nodes)."""
        nets = []
        for base in (0, 6, 12, 18):
            for i in range(6):
                for j in range(i + 1, 6):
                    nets.append((base + i, base + j))
        return Hypergraph(24, nets=nets, name="islands")

    def test_flow_handles_islands(self, islands):
        spec = binary_hierarchy(24, height=2, slack=0.0)
        result = flow_htp(
            islands, spec, FlowHTPConfig(iterations=2, seed=0)
        )
        check_partition(islands, result.partition, spec)
        # cliques fit leaves exactly: zero cost is achievable
        assert result.cost == 0.0

    def test_rfm_handles_islands(self, islands):
        spec = binary_hierarchy(24, height=2, slack=0.0)
        tree = rfm_partition(islands, spec, rng=random.Random(0))
        check_partition(islands, tree, spec)

    def test_gfm_handles_islands(self, islands):
        spec = binary_hierarchy(24, height=2, slack=0.0)
        tree = gfm_partition(islands, spec, rng=random.Random(0))
        check_partition(islands, tree, spec)

    def test_metric_on_disconnected_graph(self, islands):
        spec = binary_hierarchy(24, height=2, slack=0.0)
        graph = to_graph(islands)
        result = compute_spreading_metric(
            graph, spec, SpreadingMetricConfig(seed=0)
        )
        # unreachable pairs impose no constraints; convergence must hold
        assert result.satisfied


class TestPathologicalShapes:
    def test_single_big_net(self):
        # one net covering everything: every partition costs the same
        h = Hypergraph(16, nets=[tuple(range(16))])
        spec = binary_hierarchy(16, height=2, slack=0.0)
        result = flow_htp(h, spec, FlowHTPConfig(iterations=1, seed=0))
        check_partition(h, result.partition, spec)
        # span is 4 at level 0 and 2 at level 1 for any balanced partition
        assert result.cost == pytest.approx(4 + 2)

    def test_star_netlist(self):
        # node 0 talks to everyone; leaves must split the fanout
        nets = [(0, v) for v in range(1, 16)]
        h = Hypergraph(16, nets=nets, name="star")
        spec = binary_hierarchy(16, height=2, slack=0.0)
        result = flow_htp(h, spec, FlowHTPConfig(iterations=1, seed=0))
        check_partition(h, result.partition, spec)
        assert result.cost > 0

    def test_chain_netlist(self):
        h = Hypergraph(32, nets=[(i, i + 1) for i in range(31)])
        spec = binary_hierarchy(32, height=2, slack=0.0)
        result = flow_htp(h, spec, FlowHTPConfig(iterations=2, seed=1))
        check_partition(h, result.partition, spec)
        # a chain admits a partition cutting exactly 3 nets:
        # cost = 3 cuts at level 0, one of which also spans level 1
        assert result.cost <= 12

    def test_grid_instance(self):
        h = grid_hypergraph(8, 8)
        spec = binary_hierarchy(64, height=2, slack=0.1)
        result = flow_htp(h, spec, FlowHTPConfig(iterations=2, seed=0))
        check_partition(h, result.partition, spec)

    def test_two_nodes_minimal(self):
        h = Hypergraph(2, nets=[(0, 1)])
        spec = HierarchySpec((1.0, 2.0), (2,), (1.0,))
        result = flow_htp(h, spec, FlowHTPConfig(iterations=1, seed=0))
        check_partition(h, result.partition, spec)
        assert result.cost == pytest.approx(2.0)  # the net must span


class TestHierarchyEdgeCases:
    def test_netlist_smaller_than_leaf_capacity(self):
        h = Hypergraph(4, nets=[(0, 1), (1, 2), (2, 3)])
        spec = HierarchySpec((8.0, 16.0, 32.0), (2, 2), (1.0, 1.0))
        result = flow_htp(h, spec, FlowHTPConfig(iterations=1, seed=0))
        # everything fits one leaf: zero cost, single leaf chain
        assert result.cost == 0.0
        assert len(result.partition.leaves()) == 1

    def test_nonbinary_branching(self):
        h = Hypergraph(
            27, nets=[(i, (i + 1) % 27) for i in range(27)], name="ring"
        )
        spec = HierarchySpec(
            capacities=(4.0, 10.0, 27.0),
            branching=(3, 3),
            weights=(1.0, 1.0),
        )
        result = flow_htp(h, spec, FlowHTPConfig(iterations=1, seed=0))
        check_partition(h, result.partition, spec)

    def test_zero_weight_level(self):
        # w_0 = 0: only the top-level cut matters
        h = Hypergraph(16, nets=[(i, (i + 1) % 16) for i in range(16)])
        spec = HierarchySpec((4.0, 8.0, 16.0), (2, 2), (0.0, 1.0))
        result = flow_htp(h, spec, FlowHTPConfig(iterations=2, seed=0))
        check_partition(h, result.partition, spec)
        # a ring cut into 2 contiguous arcs at level 1 costs 2 nets * 1
        assert result.cost >= 2.0


class TestInputValidation:
    def test_graph_rejects_nan_like_input(self):
        with pytest.raises((HypergraphError, ValueError, TypeError)):
            Graph(2, edges=[(0, "x")])  # type: ignore[list-item]

    def test_hypergraph_duplicate_nets_allowed(self):
        # duplicate nets model multi-bit bundles; both count
        h = Hypergraph(3, nets=[(0, 1), (0, 1), (1, 2)])
        assert h.num_nets == 3
        assert h.cut_capacity([0]) == 2.0
