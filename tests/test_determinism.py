"""Seed determinism: every stochastic component must be reproducible."""

import random

import numpy as np

from repro.core.flow_htp import FlowHTPConfig, flow_htp
from repro.core.ratio_cut import ratio_cut
from repro.core.separator import rho_separator
from repro.htp.cost import total_cost
from repro.hypergraph.generators import planted_hierarchy_hypergraph
from repro.htp.hierarchy import binary_hierarchy
from repro.partitioning.fbb import fbb_bipartition
from repro.partitioning.fm import FMConfig, fm_bipartition
from repro.partitioning.gfm import gfm_partition
from repro.partitioning.htp_fm import HTPFMConfig, htp_fm_improve
from repro.partitioning.multilevel import MultilevelConfig, multilevel_bipartition
from repro.partitioning.rfm import rfm_partition


def _netlist():
    return planted_hierarchy_hypergraph(96, height=2, seed=17)


def _spec(netlist):
    return binary_hierarchy(netlist.total_size(), height=2)


class TestSeedDeterminism:
    def test_flow(self):
        h = _netlist()
        spec = _spec(h)
        config = FlowHTPConfig(iterations=2, seed=5)
        a = flow_htp(h, spec, config)
        b = flow_htp(h, spec, config)
        assert a.cost == b.cost
        assert [a.partition.leaf_of(v) for v in range(96)] == [
            b.partition.leaf_of(v) for v in range(96)
        ]

    def test_gfm_and_rfm(self):
        h = _netlist()
        spec = _spec(h)
        for algorithm in (gfm_partition, rfm_partition):
            a = algorithm(h, spec, rng=random.Random(3))
            b = algorithm(h, spec, rng=random.Random(3))
            assert total_cost(h, a, spec) == total_cost(h, b, spec)

    def test_fm(self):
        h = _netlist()
        a = fm_bipartition(h, 40, 56, rng=random.Random(2),
                           config=FMConfig(seed=2))
        b = fm_bipartition(h, 40, 56, rng=random.Random(2),
                           config=FMConfig(seed=2))
        assert a == b

    def test_fbb(self):
        h = _netlist()
        a = fbb_bipartition(h, 40, 56, rng=random.Random(4))
        b = fbb_bipartition(h, 40, 56, rng=random.Random(4))
        assert a.side0 == b.side0
        assert a.cut_capacity == b.cut_capacity

    def test_multilevel(self):
        h = _netlist()
        a = multilevel_bipartition(h, 40, 56, MultilevelConfig(seed=1))
        b = multilevel_bipartition(h, 40, 56, MultilevelConfig(seed=1))
        assert a == b

    def test_htp_fm(self):
        h = _netlist()
        spec = _spec(h)
        tree = rfm_partition(h, spec, rng=random.Random(0))
        a = htp_fm_improve(h, tree, spec, HTPFMConfig(seed=9))
        b = htp_fm_improve(h, tree, spec, HTPFMConfig(seed=9))
        assert a.final_cost == b.final_cost

    def test_separator(self):
        h = _netlist()
        a = rho_separator(h, rho=0.3, rng=random.Random(6))
        b = rho_separator(h, rho=0.3, rng=random.Random(6))
        assert a.pieces == b.pieces

    def test_ratio_cut(self):
        h = _netlist()
        a = ratio_cut(h, rng=random.Random(7))
        b = ratio_cut(h, rng=random.Random(7))
        assert a.side == b.side
        assert a.ratio == b.ratio

    def test_generators(self):
        a = planted_hierarchy_hypergraph(64, height=2, seed=3)
        b = planted_hierarchy_hypergraph(64, height=2, seed=3)
        assert a.nets() == b.nets()
