"""Unit tests for the Hypergraph netlist model."""

import pytest

from repro.errors import HypergraphError
from repro.hypergraph import Hypergraph


def small():
    return Hypergraph(
        num_nodes=5,
        nets=[(0, 1), (1, 2, 3), (3, 4), (0, 4)],
        name="small",
    )


class TestConstruction:
    def test_counts(self):
        h = small()
        assert h.num_nodes == 5
        assert h.num_nets == 4
        assert h.num_pins == 2 + 3 + 2 + 2

    def test_nets_are_sorted_and_deduplicated(self):
        h = Hypergraph(3, nets=[(2, 0, 2, 1)])
        assert h.net(0) == (0, 1, 2)
        assert h.num_pins == 3

    def test_default_unit_sizes_and_capacities(self):
        h = small()
        assert all(h.node_size(v) == 1.0 for v in h.nodes())
        assert all(h.net_capacity(e) == 1.0 for e in range(h.num_nets))
        assert h.total_size() == 5.0

    def test_custom_sizes_and_capacities(self):
        h = Hypergraph(
            3,
            nets=[(0, 1), (1, 2)],
            node_sizes=[2.0, 1.0, 3.0],
            net_capacities=[5.0, 0.5],
        )
        assert h.node_size(2) == 3.0
        assert h.net_capacity(1) == 0.5
        assert h.total_size([0, 2]) == 5.0

    def test_rejects_single_pin_net(self):
        with pytest.raises(HypergraphError):
            Hypergraph(3, nets=[(1,)])

    def test_rejects_net_collapsing_to_single_pin(self):
        with pytest.raises(HypergraphError):
            Hypergraph(3, nets=[(1, 1)])

    def test_rejects_out_of_range_pins(self):
        with pytest.raises(HypergraphError):
            Hypergraph(3, nets=[(0, 3)])

    def test_rejects_nonpositive_sizes(self):
        with pytest.raises(HypergraphError):
            Hypergraph(2, nets=[(0, 1)], node_sizes=[1.0, 0.0])

    def test_rejects_nonpositive_capacities(self):
        with pytest.raises(HypergraphError):
            Hypergraph(2, nets=[(0, 1)], net_capacities=[-1.0])

    def test_rejects_zero_nodes(self):
        with pytest.raises(HypergraphError):
            Hypergraph(0, nets=[])

    def test_size_length_mismatch(self):
        with pytest.raises(HypergraphError):
            Hypergraph(3, nets=[(0, 1)], node_sizes=[1.0])


class TestIncidence:
    def test_incident_nets(self):
        h = small()
        assert h.incident_nets(0) == (0, 3)
        assert h.incident_nets(1) == (0, 1)
        assert h.incident_nets(3) == (1, 2)

    def test_degree(self):
        h = small()
        assert h.degree(4) == 2
        assert h.degree(2) == 1

    def test_pin_sum_equals_degree_sum(self):
        h = small()
        assert sum(h.degree(v) for v in h.nodes()) == h.num_pins


class TestCuts:
    def test_cut_nets(self):
        h = small()
        # side {0, 1}: net (0,1) internal, nets (1,2,3) and (0,4) cut
        assert h.cut_nets([0, 1]) == [1, 3]

    def test_cut_capacity(self):
        h = Hypergraph(
            3, nets=[(0, 1), (1, 2)], net_capacities=[3.0, 4.0]
        )
        assert h.cut_capacity([0]) == 3.0
        assert h.cut_capacity([1]) == 7.0

    def test_cut_of_everything_is_empty(self):
        h = small()
        assert h.cut_nets(h.nodes()) == []
        assert h.cut_nets([]) == []


class TestSubhypergraph:
    def test_restriction_drops_small_nets(self):
        h = small()
        sub, mapping = h.subhypergraph([1, 2, 3])
        # net (1,2,3) survives in full; nets (0,1) and (3,4) shrink to
        # one pin and are dropped.
        assert sub.num_nodes == 3
        assert sub.num_nets == 1
        assert sub.net(0) == (
            mapping[1],
            mapping[2],
            mapping[3],
        )

    def test_preserves_sizes_and_capacities(self):
        h = Hypergraph(
            4,
            nets=[(0, 1, 2), (2, 3)],
            node_sizes=[1.0, 2.0, 3.0, 4.0],
            net_capacities=[7.0, 9.0],
        )
        sub, mapping = h.subhypergraph([1, 2])
        assert sub.node_size(mapping[2]) == 3.0
        assert sub.num_nets == 1
        assert sub.net_capacity(0) == 7.0

    def test_empty_subset_rejected(self):
        with pytest.raises(HypergraphError):
            small().subhypergraph([])
