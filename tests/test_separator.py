"""Unit tests for rho-separators and separator-derived multiway partitions."""

import pytest

from repro.core.separator import (
    multiway_from_separator,
    rho_separator,
    separator_spec,
)
from repro.errors import InfeasibleError, PartitionError
from repro.hypergraph.generators import (
    figure2_graph,
    figure2_hypergraph,
    planted_hierarchy_hypergraph,
)


class TestSeparatorSpec:
    def test_shape(self):
        spec = separator_spec(100, 0.25)
        assert spec.capacities == (25.0, 100.0)
        assert spec.num_levels == 1

    def test_invalid_rho(self):
        with pytest.raises(PartitionError):
            separator_spec(100, 1.5)
        with pytest.raises(PartitionError):
            separator_spec(100, 0.0)

    def test_too_small_pieces(self):
        with pytest.raises(InfeasibleError):
            separator_spec(3, 0.1)


class TestRhoSeparator:
    def test_figure2_quarters(self):
        h = figure2_hypergraph()
        result = rho_separator(h, rho=0.25, graph=figure2_graph())
        assert result.rho == 0.25
        # all pieces within the size bound, covering every node once
        flat = sorted(v for piece in result.pieces for v in piece)
        assert flat == list(range(16))
        for piece in result.pieces:
            assert len(piece) <= 4
        # the planted cliques give a 4-piece separator cutting only the
        # 6 inter-clique edges
        assert result.cut_capacity <= 10

    def test_half_separator(self):
        h = figure2_hypergraph()
        result = rho_separator(h, rho=0.5, graph=figure2_graph())
        for piece in result.pieces:
            assert len(piece) <= 8
        assert len(result.pieces) >= 2

    def test_planted_instance(self):
        h = planted_hierarchy_hypergraph(96, height=2, seed=2)
        result = rho_separator(h, rho=0.3)
        flat = sorted(v for piece in result.pieces for v in piece)
        assert flat == list(h.nodes())
        for piece in result.pieces:
            assert h.total_size(piece) <= 0.3 * h.total_size() + 1e-9


class TestMultiwayFromSeparator:
    def test_packs_into_k_parts(self):
        h = figure2_hypergraph()
        separator = rho_separator(h, rho=0.25, graph=figure2_graph())
        blocks = multiway_from_separator(h, separator, num_parts=4, capacity=4)
        assert len(blocks) <= 4
        flat = sorted(v for block in blocks for v in block)
        assert flat == list(range(16))
        for block in blocks:
            assert h.total_size(block) <= 4

    def test_infeasible_packing_raises(self):
        h = figure2_hypergraph()
        separator = rho_separator(h, rho=0.5, graph=figure2_graph())
        with pytest.raises(InfeasibleError):
            multiway_from_separator(h, separator, num_parts=2, capacity=4)
