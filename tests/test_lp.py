"""Unit tests for the exact LP lower bound (Lemmas 1 and 2)."""

import numpy as np
import pytest

from repro.core.lp import solve_spreading_lp, verify_metric_feasibility
from repro.htp.cost import induced_metric, total_cost
from repro.htp.hierarchy import HierarchySpec, binary_hierarchy
from repro.hypergraph import Graph
from repro.hypergraph.expansion import to_graph
from repro.hypergraph.generators import planted_hierarchy_hypergraph


class TestFigure2:
    def test_lower_bound_is_exactly_20(self, fig2_graph, fig2_spec):
        result = solve_spreading_lp(fig2_graph, fig2_spec)
        assert result.converged
        assert result.lower_bound == pytest.approx(20.0, abs=1e-4)

    def test_optimal_lengths_are_feasible(self, fig2_graph, fig2_spec):
        result = solve_spreading_lp(fig2_graph, fig2_spec)
        feasible, violation = verify_metric_feasibility(
            fig2_graph, fig2_spec, result.lengths, tol=1e-5
        )
        assert feasible, violation

    def test_lemma2_bound_below_every_partition(
        self,
        fig2_graph,
        fig2_spec,
        fig2_hypergraph,
    ):
        import random

        from repro.partitioning.random_init import random_partition

        lp = solve_spreading_lp(fig2_graph, fig2_spec)
        for seed in range(5):
            partition = random_partition(
                fig2_hypergraph, fig2_spec, rng=random.Random(seed)
            )
            cost = total_cost(fig2_hypergraph, partition, fig2_spec)
            assert lp.lower_bound <= cost + 1e-6

    def test_lemma1_induced_metric_objective_equals_cost(
        self, fig2_hypergraph, fig2_optimal_partition, fig2_spec, fig2_graph
    ):
        # sum_e c(e) d(e) for the induced metric equals the partition cost
        metric = induced_metric(
            fig2_hypergraph, fig2_optimal_partition, fig2_spec
        )
        objective = sum(
            fig2_hypergraph.net_capacity(e) * metric[e]
            for e in range(fig2_hypergraph.num_nets)
        )
        assert objective == pytest.approx(
            total_cost(fig2_hypergraph, fig2_optimal_partition, fig2_spec)
        )


class TestSmallInstances:
    def test_path_graph_bound(self):
        # 4-node path, hierarchy (2, 4): any partition cuts >= 1 edge at
        # cost 2; the LP should find a positive bound <= 2.
        g = Graph(4, edges=[(0, 1), (1, 2), (2, 3)])
        spec = HierarchySpec((2, 4), (2,), (1.0,))
        result = solve_spreading_lp(g, spec)
        assert result.converged
        assert 0 < result.lower_bound <= 2.0 + 1e-6

    def test_bound_scales_with_weights(self):
        g = Graph(4, edges=[(0, 1), (1, 2), (2, 3)])
        light = HierarchySpec((2, 4), (2,), (1.0,))
        heavy = HierarchySpec((2, 4), (2,), (3.0,))
        a = solve_spreading_lp(g, light).lower_bound
        b = solve_spreading_lp(g, heavy).lower_bound
        assert b == pytest.approx(3 * a, rel=1e-4)

    def test_planted_instance_bound_below_flow(self):
        from repro.core.flow_htp import FlowHTPConfig, flow_htp

        h = planted_hierarchy_hypergraph(48, height=2, seed=1)
        spec = binary_hierarchy(h.total_size(), height=2)
        g = to_graph(h)
        lp = solve_spreading_lp(g, spec, max_iterations=60)
        flow = flow_htp(
            h, spec, FlowHTPConfig(iterations=1, seed=0), graph=g
        )
        # The bound is on the *graph* model, the cost on the hypergraph;
        # for clique-expanded small nets the bound stays below the cost.
        assert lp.lower_bound <= flow.cost + 1e-6

    def test_iteration_limit_flag(self, fig2_graph, fig2_spec):
        result = solve_spreading_lp(fig2_graph, fig2_spec, max_iterations=1)
        assert not result.converged

    def test_iteration_limit_raises_when_asked(self, fig2_graph, fig2_spec):
        from repro.errors import ConvergenceError

        with pytest.raises(ConvergenceError):
            solve_spreading_lp(
                fig2_graph, fig2_spec, max_iterations=1, raise_on_limit=True
            )
