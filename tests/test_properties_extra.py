"""Second property-test wave: end-to-end invariants over random instances.

These complement ``test_properties.py`` with whole-pipeline properties:
Algorithm 3 always emits valid partitions under arbitrary metrics, the
baselines always respect their windows, cost is invariant under node
relabelling, and the induced-metric objective equals the partition cost
(the Lemma 1 equality) on random instances.
"""

import random

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.construct import construct_partition
from repro.htp.cost import induced_metric, total_cost
from repro.htp.hierarchy import binary_hierarchy
from repro.htp.validate import partition_violations
from repro.hypergraph import Hypergraph
from repro.hypergraph.expansion import to_graph
from repro.partitioning.fm import fm_bipartition
from repro.partitioning.gfm import gfm_partition
from repro.partitioning.rfm import rfm_partition


@st.composite
def connected_netlists(draw):
    """Connected netlists with 16..40 nodes and a mild net mix."""
    n = draw(st.integers(min_value=16, max_value=40))
    seed = draw(st.integers(0, 2**16))
    rng = random.Random(seed)
    nets = [(i, i + 1) for i in range(n - 1)]
    for _ in range(draw(st.integers(0, 20))):
        size = rng.randint(2, 4)
        nets.append(tuple(rng.sample(range(n), size)))
    return Hypergraph(n, nets=nets)


class TestConstructAlwaysValid:
    @given(connected_netlists(), st.integers(0, 10**6))
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_arbitrary_metric_yields_valid_partition(self, netlist, seed):
        spec = binary_hierarchy(netlist.total_size(), height=2, slack=0.3)
        graph = to_graph(netlist)
        rng = np.random.RandomState(seed % 2**31)
        lengths = rng.uniform(0.0, 1.0, graph.num_edges)
        partition = construct_partition(
            netlist, graph, spec, lengths, rng=random.Random(seed)
        )
        assert partition_violations(netlist, partition, spec) == []

    @given(connected_netlists(), st.integers(0, 10**6))
    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_zero_metric_yields_valid_partition(self, netlist, seed):
        spec = binary_hierarchy(netlist.total_size(), height=2, slack=0.3)
        graph = to_graph(netlist)
        partition = construct_partition(
            netlist,
            graph,
            spec,
            np.zeros(graph.num_edges),
            rng=random.Random(seed),
        )
        assert partition_violations(netlist, partition, spec) == []


class TestBaselinesAlwaysValid:
    @given(connected_netlists(), st.integers(0, 10**6))
    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_rfm_valid(self, netlist, seed):
        spec = binary_hierarchy(netlist.total_size(), height=2, slack=0.3)
        tree = rfm_partition(netlist, spec, rng=random.Random(seed))
        assert partition_violations(netlist, tree, spec) == []

    @given(connected_netlists(), st.integers(0, 10**6))
    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_gfm_valid(self, netlist, seed):
        spec = binary_hierarchy(netlist.total_size(), height=2, slack=0.3)
        tree = gfm_partition(netlist, spec, rng=random.Random(seed))
        assert partition_violations(netlist, tree, spec) == []

    @given(connected_netlists(), st.integers(0, 10**6))
    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_fm_window(self, netlist, seed):
        n = netlist.num_nodes
        lower, upper = n // 2 - 2, n // 2 + 2
        sides, cut = fm_bipartition(
            netlist, lower, upper, rng=random.Random(seed)
        )
        assert lower <= sides.count(0) <= upper
        assert cut >= 0


class TestCostInvariances:
    @given(connected_netlists(), st.integers(0, 10**6))
    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_lemma1_objective_equality(self, netlist, seed):
        """sum_e c(e) d(e) of the induced metric == partition cost."""
        spec = binary_hierarchy(netlist.total_size(), height=2, slack=0.3)
        from repro.partitioning.random_init import random_partition

        partition = random_partition(netlist, spec, rng=random.Random(seed))
        metric = induced_metric(netlist, partition, spec)
        objective = sum(
            netlist.net_capacity(e) * metric[e]
            for e in range(netlist.num_nets)
        )
        assert objective == pytest.approx(
            total_cost(netlist, partition, spec)
        )

    @given(connected_netlists(), st.integers(0, 10**6))
    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_cost_invariant_under_relabelling(self, netlist, seed):
        """Permuting node ids (and the partition with them) keeps cost."""
        from repro.htp.partition import PartitionTree
        from repro.partitioning.random_init import random_partition

        spec = binary_hierarchy(netlist.total_size(), height=2, slack=0.3)
        partition = random_partition(netlist, spec, rng=random.Random(seed))
        baseline = total_cost(netlist, partition, spec)

        rng = random.Random(seed)
        n = netlist.num_nodes
        perm = list(range(n))
        rng.shuffle(perm)  # perm[old] = new
        permuted = Hypergraph(
            n,
            nets=[tuple(perm[v] for v in pins) for pins in netlist.nets()],
            net_capacities=netlist.net_capacities(),
        )
        # rebuild the same partition structure under new labels
        blocks = partition.leaf_blocks()
        nested = [
            [perm[v] for v in blocks[leaf]] for leaf in sorted(blocks)
        ]
        # group leaves under their original parents
        parents = {}
        for leaf in sorted(blocks):
            parents.setdefault(partition.parent(leaf), []).append(
                [perm[v] for v in blocks[leaf]]
            )
        permuted_partition = PartitionTree.from_nested(
            list(parents.values()), n
        )
        assert total_cost(
            permuted, permuted_partition, spec
        ) == pytest.approx(baseline)
