"""Unit tests for the flow-based balanced bipartitioner (FBB)."""

import random

import pytest

from repro.errors import PartitionError
from repro.hypergraph import Hypergraph
from repro.partitioning.fbb import fbb_bipartition


def two_cliques(bridge_nets=1):
    nets = []
    for base in (0, 4):
        for i in range(4):
            for j in range(i + 1, 4):
                nets.append((base + i, base + j))
    for k in range(bridge_nets):
        nets.append((k % 4, 4 + k % 4))
    return Hypergraph(8, nets=nets)


class TestFBB:
    def test_finds_min_cut_with_balance(self):
        h = two_cliques()
        result = fbb_bipartition(h, 4, 4, seed_s=0, seed_t=7)
        assert result.cut_capacity == 1.0
        assert sorted(result.side0) == [0, 1, 2, 3]

    def test_respects_window(self):
        h = Hypergraph(10, nets=[(i, i + 1) for i in range(9)])
        result = fbb_bipartition(
            h, 3, 5, seed_s=0, seed_t=9, rng=random.Random(1)
        )
        assert 3 <= len(result.side0) <= 5
        assert result.cut_capacity == 1.0  # a chain always cuts one net

    def test_cut_counts_nets_not_pins(self):
        # one 4-pin net across the cut must cost exactly its capacity
        h = Hypergraph(
            6,
            nets=[(0, 1), (1, 2), (3, 4), (4, 5), (0, 1, 3, 4)],
            net_capacities=[1, 1, 1, 1, 5],
        )
        result = fbb_bipartition(h, 3, 3, seed_s=0, seed_t=5)
        assert result.cut_capacity == 5.0

    def test_random_seeds(self):
        h = two_cliques()
        result = fbb_bipartition(h, 4, 4, rng=random.Random(3))
        assert len(result.side0) == 4

    def test_same_seed_rejected(self):
        with pytest.raises(PartitionError):
            fbb_bipartition(two_cliques(), 4, 4, seed_s=2, seed_t=2)

    def test_degenerate_window_rejected(self):
        with pytest.raises(PartitionError):
            fbb_bipartition(two_cliques(), 8, 8, seed_s=0, seed_t=7)

    def test_flow_rounds_reported(self):
        h = two_cliques()
        result = fbb_bipartition(h, 4, 4, seed_s=0, seed_t=7)
        assert result.flow_rounds >= 1

    def test_matches_fm_quality_on_planted(self):
        from repro.hypergraph.generators import planted_hierarchy_hypergraph
        from repro.partitioning.fm import fm_bipartition

        h = planted_hierarchy_hypergraph(64, height=1, seed=5)
        half = 32
        fbb = fbb_bipartition(
            h, half - 4, half + 4, rng=random.Random(0)
        )
        _sides, fm_cut = fm_bipartition(
            h, half - 4, half + 4, rng=random.Random(0)
        )
        # flow-based cuts should be competitive with FM on planted halves
        assert fbb.cut_capacity <= max(2 * fm_cut, fm_cut + 8)
