"""Unit tests for HierarchySpec and the binary hierarchy factory."""

import pytest

from repro.errors import HierarchyError
from repro.htp.hierarchy import (
    HierarchySpec,
    binary_hierarchy,
    figure2_hierarchy,
)


class TestSpecValidation:
    def test_valid_spec(self):
        spec = HierarchySpec((4, 8, 16), (2, 2), (1.0, 2.0))
        assert spec.num_levels == 2
        assert spec.capacity(0) == 4
        assert spec.branch_bound(2) == 2
        assert spec.weight(1) == 2.0

    def test_rejects_non_increasing_capacities(self):
        with pytest.raises(HierarchyError):
            HierarchySpec((4, 4, 16), (2, 2), (1.0, 1.0))

    def test_rejects_wrong_branching_length(self):
        with pytest.raises(HierarchyError):
            HierarchySpec((4, 8, 16), (2,), (1.0, 1.0))

    def test_rejects_wrong_weights_length(self):
        with pytest.raises(HierarchyError):
            HierarchySpec((4, 8, 16), (2, 2), (1.0,))

    def test_rejects_branching_below_two(self):
        with pytest.raises(HierarchyError):
            HierarchySpec((4, 8, 16), (2, 1), (1.0, 1.0))

    def test_rejects_negative_weights(self):
        with pytest.raises(HierarchyError):
            HierarchySpec((4, 8, 16), (2, 2), (1.0, -1.0))

    def test_rejects_single_level(self):
        with pytest.raises(HierarchyError):
            HierarchySpec((4,), (), ())

    def test_branch_bound_range_checks(self):
        spec = figure2_hierarchy()
        with pytest.raises(HierarchyError):
            spec.branch_bound(0)
        with pytest.raises(HierarchyError):
            spec.weight(2)


class TestLevelOfSize:
    def test_leaf_level(self):
        spec = figure2_hierarchy()
        assert spec.level_of_size(3) == 0
        assert spec.level_of_size(4) == 0

    def test_intermediate(self):
        spec = figure2_hierarchy()
        assert spec.level_of_size(5) == 1
        assert spec.level_of_size(8) == 1
        assert spec.level_of_size(9) == 2
        assert spec.level_of_size(16) == 2

    def test_oversize_raises(self):
        with pytest.raises(HierarchyError):
            figure2_hierarchy().level_of_size(17)


class TestChildBounds:
    def test_figure2_root(self):
        spec = figure2_hierarchy()
        lower, upper = spec.child_bounds(2, 16)
        assert lower == 8
        assert upper == 8

    def test_infeasible_raises(self):
        spec = HierarchySpec((2, 8, 16), (2, 2), (1.0, 1.0))
        # a 16-size block at level 1 would need children of size 8 > C_0=2
        with pytest.raises(HierarchyError):
            spec.child_bounds(1, 16)


class TestBinaryFactory:
    def test_shape(self):
        spec = binary_hierarchy(160, height=4)
        assert spec.num_levels == 4
        assert all(spec.branch_bound(l) == 2 for l in range(1, 5))
        assert spec.capacity(4) == 160

    def test_capacities_strictly_increase(self):
        for total in (16, 33, 100, 5000):
            spec = binary_hierarchy(total, height=4)
            capacities = spec.capacities
            assert all(
                capacities[i] < capacities[i + 1]
                for i in range(len(capacities) - 1)
            )

    def test_slack_inflates_capacities(self):
        tight = binary_hierarchy(1000, height=3, slack=0.0)
        loose = binary_hierarchy(1000, height=3, slack=0.5)
        assert loose.capacity(0) > tight.capacity(0)

    def test_feasible_bounds_at_every_level(self):
        spec = binary_hierarchy(546, height=4)
        size = 546.0
        for level in range(4, 0, -1):
            lower, upper = spec.child_bounds(level, size)
            assert lower <= upper
            size = upper  # worst-case child

    def test_custom_weights(self):
        spec = binary_hierarchy(64, height=2, weights=(1.0, 3.0))
        assert spec.weight(1) == 3.0

    def test_too_small_total_raises(self):
        with pytest.raises(HierarchyError):
            binary_hierarchy(8, height=4)

    def test_describe_mentions_all_levels(self):
        text = binary_hierarchy(64, height=2).describe()
        assert "level 0" in text and "level 2" in text
