"""Unit tests for the service job core: specs, states, the manager."""

import asyncio
import threading
import time

import pytest

from repro.core.faults import FaultTolerance
from repro.errors import ServiceError
from repro.htp.hierarchy import binary_hierarchy
from repro.hypergraph.generators import planted_hierarchy_hypergraph
from repro.service.jobs import (
    CONFIG_DEFAULTS,
    Job,
    JobManager,
    JobSpec,
    JobState,
)


@pytest.fixture(scope="module")
def netlist():
    return planted_hierarchy_hypergraph(48, height=2, seed=0)


@pytest.fixture(scope="module")
def hierarchy(netlist):
    return binary_hierarchy(netlist.total_size(), height=2)


def make_spec(netlist, hierarchy, **config):
    return JobSpec.from_parts(netlist, hierarchy, config)


class TestJobSpecHashing:
    def test_hash_is_stable(self, netlist, hierarchy):
        a = make_spec(netlist, hierarchy, seed=7)
        b = make_spec(netlist, hierarchy, seed=7)
        assert a.canonical_hash() == b.canonical_hash()

    def test_payload_key_order_is_irrelevant(self, netlist, hierarchy):
        spec = make_spec(netlist, hierarchy, seed=7, iterations=1)
        payload = spec.to_payload()
        shuffled = {
            "config": dict(reversed(list(payload["config"].items()))),
            "hierarchy": dict(reversed(list(payload["hierarchy"].items()))),
            "netlist": dict(reversed(list(payload["netlist"].items()))),
        }
        assert (
            JobSpec.from_payload(shuffled).canonical_hash()
            == spec.canonical_hash()
        )

    def test_pin_order_inside_nets_is_irrelevant(self, netlist, hierarchy):
        spec = make_spec(netlist, hierarchy)
        payload = spec.to_payload()
        payload["netlist"]["nets"] = [
            list(reversed(pins)) for pins in payload["netlist"]["nets"]
        ]
        assert (
            JobSpec.from_payload(payload).canonical_hash()
            == spec.canonical_hash()
        )

    def test_omitted_defaults_equal_explicit_defaults(self, netlist, hierarchy):
        bare = make_spec(netlist, hierarchy)
        explicit = make_spec(netlist, hierarchy, **CONFIG_DEFAULTS)
        assert bare.canonical_hash() == explicit.canonical_hash()

    def test_netlist_name_is_irrelevant(self, netlist, hierarchy):
        spec = make_spec(netlist, hierarchy)
        payload = spec.to_payload()
        payload["netlist"]["name"] = "renamed"
        assert (
            JobSpec.from_payload(payload).canonical_hash()
            == spec.canonical_hash()
        )

    @pytest.mark.parametrize(
        "override",
        [
            {"seed": 1},
            {"engine": "scipy-serial"},
            {"iterations": 3},
            {"delta": 0.5},
            {"node_sample": 0.5},
        ],
    )
    def test_config_changes_change_the_hash(self, netlist, hierarchy, override):
        assert (
            make_spec(netlist, hierarchy, **override).canonical_hash()
            != make_spec(netlist, hierarchy).canonical_hash()
        )

    def test_netlist_changes_change_the_hash(self, netlist, hierarchy):
        other = planted_hierarchy_hypergraph(48, height=2, seed=1)
        assert (
            make_spec(other, hierarchy).canonical_hash()
            != make_spec(netlist, hierarchy).canonical_hash()
        )

    def test_hierarchy_changes_change_the_hash(self, netlist, hierarchy):
        taller = binary_hierarchy(netlist.total_size(), height=3)
        assert (
            make_spec(netlist, taller).canonical_hash()
            != make_spec(netlist, hierarchy).canonical_hash()
        )


class TestJobSpecValidation:
    def test_rejects_non_dict_payload(self):
        with pytest.raises(ServiceError):
            JobSpec.from_payload([1, 2])

    def test_rejects_missing_sections(self, netlist, hierarchy):
        payload = make_spec(netlist, hierarchy).to_payload()
        del payload["hierarchy"]
        with pytest.raises(ServiceError, match="hierarchy"):
            JobSpec.from_payload(payload)

    def test_rejects_unknown_config_keys(self, netlist, hierarchy):
        payload = make_spec(netlist, hierarchy).to_payload()
        payload["config"]["warp_factor"] = 9
        with pytest.raises(ServiceError, match="warp_factor"):
            JobSpec.from_payload(payload)

    def test_rejects_unknown_engine(self, netlist, hierarchy):
        payload = make_spec(netlist, hierarchy).to_payload()
        payload["config"]["engine"] = "warp-drive"
        with pytest.raises(ServiceError, match="engine"):
            JobSpec.from_payload(payload)

    def test_rejects_bad_netlist(self, netlist, hierarchy):
        payload = make_spec(netlist, hierarchy).to_payload()
        payload["netlist"]["nets"] = [[0]]
        with pytest.raises(ServiceError, match="netlist"):
            JobSpec.from_payload(payload)

    def test_rejects_bad_hierarchy(self, netlist, hierarchy):
        payload = make_spec(netlist, hierarchy).to_payload()
        payload["hierarchy"]["capacities"] = [4.0, 3.0]
        with pytest.raises(ServiceError, match="hierarchy"):
            JobSpec.from_payload(payload)

    def test_roundtrips_library_objects(self, netlist, hierarchy):
        spec = make_spec(netlist, hierarchy, seed=5)
        rebuilt = spec.build_netlist()
        assert rebuilt.num_nodes == netlist.num_nodes
        assert rebuilt.nets() == netlist.nets()
        assert spec.build_hierarchy() == hierarchy
        assert spec.build_config().seed == 5


class TestJobStateMachine:
    def _job(self):
        return Job(job_id="x-0001", spec_hash="0" * 64, spec=None)

    def test_happy_path(self):
        job = self._job()
        job.transition(JobState.RUNNING)
        job.transition(JobState.DONE)
        assert job.state is JobState.DONE
        assert job.finished_at is not None

    @pytest.mark.parametrize(
        "path,illegal",
        [
            ([], JobState.DONE),
            ([], JobState.FAILED),
            ([JobState.RUNNING, JobState.DONE], JobState.RUNNING),
            ([JobState.CANCELLED], JobState.RUNNING),
            ([JobState.RUNNING, JobState.FAILED], JobState.DONE),
        ],
    )
    def test_illegal_transitions_raise(self, path, illegal):
        job = self._job()
        for state in path:
            job.transition(state)
        with pytest.raises(ServiceError, match="illegal transition"):
            job.transition(illegal)


def run_manager(coro):
    """Run an async manager scenario to completion."""
    return asyncio.run(coro)


async def wait_terminal(job, timeout=10.0):
    """Poll until ``job`` reaches a terminal state (graceful shutdown
    cancels jobs still queued, so tests wait before shutting down)."""
    from repro.service.jobs import TERMINAL_STATES

    deadline = time.monotonic() + timeout
    while job.state not in TERMINAL_STATES:
        assert time.monotonic() < deadline, f"job stuck {job.state}"
        await asyncio.sleep(0.005)


class TestJobManager:
    def test_submit_and_complete(self, netlist, hierarchy):
        spec = make_spec(netlist, hierarchy)

        async def scenario():
            manager = JobManager(runner=lambda s: DummyResult(s))
            await manager.start()
            job = manager.submit(spec)
            assert job.state is JobState.QUEUED
            await wait_terminal(job)
            await manager.shutdown(drain=True)
            return job

        job = run_manager(scenario())
        assert job.state is JobState.DONE
        assert job.result_payload["spec_hash"] == job.spec_hash

    def test_timeout_fails_the_job(self, netlist, hierarchy):
        spec = make_spec(netlist, hierarchy)

        async def scenario():
            manager = JobManager(
                job_timeout=0.05, runner=lambda s: time.sleep(5)
            )
            await manager.start()
            job = manager.submit(spec)
            while job.state not in (JobState.FAILED, JobState.DONE):
                await asyncio.sleep(0.01)
            await manager.shutdown(drain=False)
            return job, manager

        job, manager = run_manager(scenario())
        assert job.state is JobState.FAILED
        assert "timed out" in job.error
        assert any(
            r["action"] == "job-timeout" and r["site"] == "service"
            for r in manager.counters.degradations
        )

    def test_cancel_queued_job(self, netlist, hierarchy):
        spec = make_spec(netlist, hierarchy)
        release = threading.Event()

        async def scenario():
            manager = JobManager(
                max_concurrency=1,
                runner=lambda s: release.wait(5) and DummyResult(s),
            )
            await manager.start()
            blocker = manager.submit(spec)
            queued = manager.submit(make_spec(netlist, hierarchy, seed=9))
            cancelled = manager.cancel(queued.job_id)
            assert cancelled.state is JobState.CANCELLED
            release.set()
            await wait_terminal(blocker)
            await manager.shutdown(drain=True)
            return blocker, queued

        blocker, queued = run_manager(scenario())
        assert blocker.state is JobState.DONE
        assert queued.state is JobState.CANCELLED

    def test_cancel_running_job_discards_result(self, netlist, hierarchy):
        spec = make_spec(netlist, hierarchy)
        started = threading.Event()
        release = threading.Event()

        def runner(s):
            started.set()
            release.wait(5)
            return DummyResult(s)

        async def scenario():
            from repro.service.cache import ResultCache

            cache = ResultCache()
            manager = JobManager(cache=cache, runner=runner)
            await manager.start()
            job = manager.submit(spec)
            await asyncio.get_running_loop().run_in_executor(
                None, started.wait, 5
            )
            manager.cancel(job.job_id)
            release.set()
            await manager.shutdown(drain=True)
            return job, cache

        job, cache = run_manager(scenario())
        assert job.state is JobState.CANCELLED
        assert job.result_payload is None
        assert len(cache) == 0  # the discarded result was not cached

    def test_failed_job_retries_then_reports(self, netlist, hierarchy):
        spec = make_spec(netlist, hierarchy)
        attempts = []

        def runner(s):
            attempts.append(1)
            raise RuntimeError("boom")

        async def scenario():
            manager = JobManager(
                runner=runner,
                tolerance=FaultTolerance(
                    task_retries=2, backoff_base=0.001, backoff_cap=0.01
                ),
            )
            await manager.start()
            job = manager.submit(spec)
            await wait_terminal(job)
            await manager.shutdown(drain=True)
            return job, manager

        job, manager = run_manager(scenario())
        assert job.state is JobState.FAILED
        assert "boom" in job.error
        assert len(attempts) == 3  # first try + 2 retries
        assert manager.counters.pool_task_retries == 2
        assert any(
            r["action"] == "job-failed" for r in manager.counters.degradations
        )

    def test_retry_budget_can_rescue_a_flaky_job(self, netlist, hierarchy):
        spec = make_spec(netlist, hierarchy)
        attempts = []

        def runner(s):
            attempts.append(1)
            if len(attempts) == 1:
                raise RuntimeError("transient")
            return DummyResult(s)

        async def scenario():
            manager = JobManager(
                runner=runner,
                tolerance=FaultTolerance(
                    task_retries=1, backoff_base=0.001, backoff_cap=0.01
                ),
            )
            await manager.start()
            job = manager.submit(spec)
            await wait_terminal(job)
            await manager.shutdown(drain=True)
            return job

        job = run_manager(scenario())
        assert job.state is JobState.DONE
        assert len(attempts) == 2

    def test_graceful_shutdown_drains_in_flight(self, netlist, hierarchy):
        """Acceptance: in-flight jobs complete, queued ones report cancelled."""
        release = threading.Event()

        def runner(s):
            release.wait(5)
            return DummyResult(s)

        async def scenario():
            manager = JobManager(max_concurrency=1, runner=runner)
            await manager.start()
            running = manager.submit(make_spec(netlist, hierarchy, seed=1))
            queued = manager.submit(make_spec(netlist, hierarchy, seed=2))
            while running.state is not JobState.RUNNING:
                await asyncio.sleep(0.005)
            release.set()
            await manager.shutdown(drain=True)
            return manager, running, queued

        manager, running, queued = run_manager(scenario())
        assert running.state is JobState.DONE
        assert queued.state is JobState.CANCELLED
        with pytest.raises(ServiceError, match="not accepting"):
            manager.submit(make_spec(netlist, hierarchy))

    def test_rejects_bad_concurrency(self):
        with pytest.raises(ServiceError):
            asyncio.run(_make_manager_with_concurrency(0))


async def _make_manager_with_concurrency(n):
    return JobManager(max_concurrency=n)


class DummyResult:
    """A FlowHTPResult stand-in: just enough for the payload path."""

    def __init__(self, spec):
        self.perf = None

    def to_dict(self):
        return {"cost": 1.0, "runtime_seconds": 0.0}
