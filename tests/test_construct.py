"""Unit tests for Algorithm 3 (find_cut and the recursive construction)."""

import random

import numpy as np
import pytest

from repro.core.construct import construct_partition, find_cut
from repro.errors import PartitionError
from repro.htp.cost import induced_metric, total_cost
from repro.htp.hierarchy import binary_hierarchy
from repro.htp.validate import check_partition
from repro.hypergraph.expansion import star_expansion, to_graph


@pytest.fixture
def fig2_ideal_lengths(fig2_hypergraph, fig2_optimal_partition, fig2_spec, fig2_graph):
    """The induced (ideal) metric of the optimal Figure 2 partition.

    Figure 2's nets are 2-pin, so net metric values map directly onto the
    graph's edges.
    """
    metric = induced_metric(
        fig2_hypergraph, fig2_optimal_partition, fig2_spec
    )
    lengths = np.zeros(fig2_graph.num_edges)
    for net_id, pins in enumerate(fig2_hypergraph.nets()):
        edge_id = fig2_graph.edge_id(pins[0], pins[1])
        lengths[edge_id] = metric[net_id]
    return lengths


class TestFindCut:
    @pytest.mark.parametrize("strategy", ["prim", "mst", "both"])
    def test_recovers_planted_half(
        self, fig2_hypergraph, fig2_graph, fig2_ideal_lengths, strategy
    ):
        rng = random.Random(0)
        piece = find_cut(
            fig2_hypergraph,
            fig2_graph,
            fig2_ideal_lengths,
            list(range(16)),
            lower=8,
            upper=8,
            rng=rng,
            restarts=4,
            strategy=strategy,
        )
        assert sorted(piece) in ([0, 1, 2, 3, 4, 5, 6, 7],
                                 [8, 9, 10, 11, 12, 13, 14, 15])

    def test_respects_window(self, fig2_hypergraph, fig2_graph):
        rng = random.Random(1)
        lengths = np.ones(30)
        piece = find_cut(
            fig2_hypergraph,
            fig2_graph,
            lengths,
            list(range(16)),
            lower=5,
            upper=7,
            rng=rng,
            restarts=2,
        )
        assert 5 <= len(piece) <= 7

    def test_restricted_to_candidates(self, fig2_hypergraph, fig2_graph):
        rng = random.Random(2)
        candidates = list(range(8))
        piece = find_cut(
            fig2_hypergraph,
            fig2_graph,
            np.ones(30),
            candidates,
            lower=3,
            upper=5,
            rng=rng,
        )
        assert set(piece) <= set(candidates)

    def test_empty_candidates_rejected(self, fig2_hypergraph, fig2_graph):
        with pytest.raises(PartitionError):
            find_cut(
                fig2_hypergraph,
                fig2_graph,
                np.ones(30),
                [],
                lower=1,
                upper=2,
                rng=random.Random(0),
            )

    def test_unknown_strategy_rejected(self, fig2_hypergraph, fig2_graph):
        with pytest.raises(PartitionError):
            find_cut(
                fig2_hypergraph,
                fig2_graph,
                np.ones(30),
                [0, 1],
                lower=1,
                upper=1,
                rng=random.Random(0),
                strategy="magic",
            )


class TestConstructPartition:
    def test_ideal_metric_reconstructs_optimum(
        self,
        fig2_hypergraph,
        fig2_graph,
        fig2_spec,
        fig2_ideal_lengths,
    ):
        partition = construct_partition(
            fig2_hypergraph,
            fig2_graph,
            fig2_spec,
            fig2_ideal_lengths,
            rng=random.Random(3),
            find_cut_restarts=4,
        )
        check_partition(fig2_hypergraph, partition, fig2_spec)
        assert total_cost(
            fig2_hypergraph, partition, fig2_spec
        ) == pytest.approx(20.0)

    def test_valid_on_uniform_metric(
        self, fig2_hypergraph, fig2_graph, fig2_spec
    ):
        partition = construct_partition(
            fig2_hypergraph,
            fig2_graph,
            fig2_spec,
            np.ones(30),
            rng=random.Random(5),
        )
        check_partition(fig2_hypergraph, partition, fig2_spec)

    def test_valid_on_planted_instance(
        self, medium_planted, medium_planted_spec
    ):
        graph = to_graph(medium_planted)
        partition = construct_partition(
            medium_planted,
            graph,
            medium_planted_spec,
            np.random.RandomState(0).uniform(0.1, 1.0, graph.num_edges),
            rng=random.Random(0),
        )
        check_partition(medium_planted, partition, medium_planted_spec)

    def test_star_graph_rejected(self, fig2_hypergraph, fig2_spec):
        star, _centers = star_expansion(fig2_hypergraph)
        with pytest.raises(PartitionError):
            construct_partition(
                fig2_hypergraph,
                star,
                fig2_spec,
                np.ones(star.num_edges),
            )

    def test_small_netlist_gets_leaf_chain(self):
        # total size fits a leaf: the tree is a single chain to one leaf
        from repro.hypergraph import Hypergraph

        h = Hypergraph(3, nets=[(0, 1), (1, 2)])
        spec = binary_hierarchy(16, height=2)  # C_0 >= 3
        g = to_graph(h)
        partition = construct_partition(h, g, spec, np.ones(g.num_edges))
        assert len(partition.leaves()) == 1
        assert partition.num_levels == 2
