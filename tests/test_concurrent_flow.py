"""Unit tests for max concurrent flow and the flow/cut duality."""

import math

import pytest

from repro.core.concurrent_flow import (
    Commodity,
    cut_throughput_bound,
    max_concurrent_flow,
)
from repro.errors import PartitionError
from repro.hypergraph import Graph
from repro.hypergraph.generators import figure2_graph


class TestSingleCommodity:
    def test_bottleneck_path(self):
        # path with capacities 4-1-4: one unit-demand commodity end to end
        g = Graph(4, edges=[(0, 1, 4.0), (1, 2, 1.0), (2, 3, 4.0)])
        result = max_concurrent_flow(
            g, [Commodity(0, 3)], max_phases=100
        )
        # true max flow = 1 (demand 1 -> lambda = 1)
        assert result.throughput == pytest.approx(1.0, rel=0.15)

    def test_congestion_locates_bottleneck(self):
        g = Graph(4, edges=[(0, 1, 4.0), (1, 2, 1.0), (2, 3, 4.0)])
        result = max_concurrent_flow(g, [Commodity(0, 3)], max_phases=60)
        bottleneck = g.edge_id(1, 2)
        assert result.most_congested_edges(1)[0] == bottleneck

    def test_parallel_paths_add(self):
        # two disjoint unit paths s->t: max flow 2, demand 1 -> lambda 2
        g = Graph(
            4, edges=[(0, 1, 1.0), (1, 3, 1.0), (0, 2, 1.0), (2, 3, 1.0)]
        )
        result = max_concurrent_flow(g, [Commodity(0, 3)], max_phases=100)
        assert result.throughput == pytest.approx(2.0, rel=0.2)


class TestMultiCommodity:
    def test_two_commodities_share_bridge(self):
        # both commodities must cross the capacity-2 bridge
        g = Graph(
            6,
            edges=[
                (0, 2, 5.0),
                (1, 2, 5.0),
                (2, 3, 2.0),  # bridge
                (3, 4, 5.0),
                (3, 5, 5.0),
            ],
        )
        commodities = [Commodity(0, 4), Commodity(1, 5)]
        result = max_concurrent_flow(g, commodities, max_phases=120)
        # bridge capacity 2 shared by total demand 2 -> lambda = 1
        assert result.throughput == pytest.approx(1.0, rel=0.2)

    def test_duality_bound_holds(self):
        g = figure2_graph()
        commodities = [
            Commodity(0, 15),
            Commodity(3, 12),
            Commodity(5, 10),
        ]
        result = max_concurrent_flow(g, commodities, max_phases=80)
        # the planted level-1 cut (8|8, capacity 2) upper-bounds lambda
        bound = cut_throughput_bound(g, commodities, list(range(8)))
        assert result.throughput <= bound + 0.2 * bound

    def test_bound_is_inf_without_crossing_demand(self):
        g = figure2_graph()
        commodities = [Commodity(0, 3)]
        assert cut_throughput_bound(
            g, commodities, list(range(8))
        ) == math.inf


class TestValidation:
    def test_no_commodities_rejected(self):
        with pytest.raises(PartitionError):
            max_concurrent_flow(figure2_graph(), [])

    def test_loop_commodity_rejected(self):
        with pytest.raises(PartitionError):
            max_concurrent_flow(figure2_graph(), [Commodity(1, 1)])

    def test_nonpositive_demand_rejected(self):
        with pytest.raises(PartitionError):
            max_concurrent_flow(figure2_graph(), [Commodity(0, 1, 0.0)])

    def test_disconnected_commodity_rejected(self):
        g = Graph(4, edges=[(0, 1), (2, 3)])
        with pytest.raises(PartitionError):
            max_concurrent_flow(g, [Commodity(0, 3)])
