"""Unit test for the one-shot report generator (tiny scale)."""

from repro.analysis.experiments import ExperimentConfig
from repro.analysis.report import generate_report
from repro.core.flow_htp import FlowHTPConfig
from repro.core.spreading_metric import SpreadingMetricConfig
from repro.partitioning.htp_fm import HTPFMConfig


def test_report_contains_all_sections():
    config = ExperimentConfig(
        scale=0.12,
        circuits=("c1355",),
        flow=FlowHTPConfig(
            iterations=1,
            constructions_per_metric=2,
            seed=0,
            metric=SpreadingMetricConfig(alpha=0.5, delta=0.05, seed=0),
        ),
        improve=HTPFMConfig(max_passes=1),
    )
    report = generate_report(config=config, include_figure2=True)
    assert "# HTP reproduction report" in report
    assert "## Table 1" in report
    assert "## Table 2" in report
    assert "## Table 3" in report
    assert "## Figure 2" in report
    assert "optimal cost: **20**" in report
    assert "FLOW recovered cost: **20**" in report
