"""Unit tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.hypergraph.generators import planted_hierarchy_hypergraph
from repro.hypergraph.io import read_hgr, write_hgr


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_generate_defaults(self):
        args = build_parser().parse_args(["generate", "out.hgr"])
        assert args.kind == "planted"
        assert args.nodes == 256


class TestGenerate:
    def test_writes_hgr(self, tmp_path, capsys):
        path = tmp_path / "out.hgr"
        code = main(["generate", str(path), "--nodes", "64", "--seed", "3"])
        assert code == 0
        netlist = read_hgr(path)
        assert netlist.num_nodes == 64
        assert "wrote 64 nodes" in capsys.readouterr().out

    def test_surrogate_kind(self, tmp_path, capsys):
        path = tmp_path / "c.hgr"
        code = main(
            ["generate", str(path), "--kind", "c1355", "--scale", "0.1"]
        )
        assert code == 0
        assert read_hgr(path).num_nodes == round(546 * 0.1)

    def test_random_kind(self, tmp_path):
        path = tmp_path / "r.hgr"
        assert main(["generate", str(path), "--kind", "random",
                     "--nodes", "40"]) == 0
        assert read_hgr(path).num_nodes == 40


class TestPartition:
    @pytest.fixture
    def netlist_file(self, tmp_path):
        netlist = planted_hierarchy_hypergraph(64, height=2, seed=0)
        path = tmp_path / "n.hgr"
        write_hgr(netlist, path)
        return str(path)

    @pytest.mark.parametrize("algorithm", ["flow", "gfm", "rfm"])
    def test_algorithms_run(self, netlist_file, capsys, algorithm):
        code = main(
            [
                "partition",
                netlist_file,
                "--algorithm",
                algorithm,
                "--height",
                "2",
                "--iterations",
                "1",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "cost" in out
        assert "WARNING" not in out

    def test_improve_flag(self, netlist_file, capsys):
        code = main(
            [
                "partition",
                netlist_file,
                "--algorithm",
                "rfm",
                "--height",
                "2",
                "--improve",
            ]
        )
        assert code == 0
        assert "after FM improvement" in capsys.readouterr().out


class TestLowerBound:
    def test_runs_on_small_input(self, tmp_path, capsys):
        netlist = planted_hierarchy_hypergraph(24, height=2, seed=1)
        path = tmp_path / "s.hgr"
        write_hgr(netlist, path)
        code = main(
            ["lowerbound", str(path), "--height", "2",
             "--max-iterations", "40"]
        )
        assert code == 0
        assert "LP lower bound" in capsys.readouterr().out


class TestTableCommand:
    def test_table1(self, capsys):
        code = main(["table", "1", "--scale", "0.1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "TABLE 1" in out
        assert "c7552" in out


class TestSearchCommand:
    def test_search_runs(self, tmp_path, capsys):
        netlist = planted_hierarchy_hypergraph(64, height=2, seed=0)
        path = tmp_path / "s.hgr"
        write_hgr(netlist, path)
        code = main(["search", str(path), "--heights", "1", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "best: height" in out

    def test_search_reads_bench_files(self, tmp_path, capsys):
        from repro.hypergraph.bench_format import write_bench

        netlist = planted_hierarchy_hypergraph(48, height=2, seed=1)
        path = tmp_path / "c.bench"
        write_bench(netlist, path)
        code = main(["search", str(path), "--heights", "1"])
        assert code == 0
        assert "height 1" in capsys.readouterr().out


class TestSeparatorCommand:
    def test_separator_runs(self, tmp_path, capsys):
        netlist = planted_hierarchy_hypergraph(64, height=2, seed=0)
        path = tmp_path / "s.hgr"
        write_hgr(netlist, path)
        code = main(["separator", str(path), "--rho", "0.3"])
        assert code == 0
        out = capsys.readouterr().out
        assert "pieces" in out
        assert "cut capacity" in out


class TestBadInputExitCodes:
    """argparse rejects malformed options with exit code 2 (satellite:
    fault-tolerance PR)."""

    @pytest.fixture
    def netlist_file(self, tmp_path):
        netlist = planted_hierarchy_hypergraph(48, height=2, seed=0)
        path = tmp_path / "bad.hgr"
        write_hgr(netlist, path)
        return str(path)

    def test_unknown_engine_exits_2(self, netlist_file, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["partition", netlist_file, "--engine", "warp-drive"])
        assert excinfo.value.code == 2
        assert "invalid choice" in capsys.readouterr().err

    @pytest.mark.parametrize("workers", ["0", "-3", "two"])
    def test_bad_workers_exits_2(self, netlist_file, capsys, workers):
        with pytest.raises(SystemExit) as excinfo:
            main(["partition", netlist_file, "--engine", "parallel",
                  "--workers", workers])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "--workers" in err

    @pytest.mark.parametrize("workers", ["0", "nope"])
    def test_search_bad_workers_exits_2(self, netlist_file, capsys, workers):
        with pytest.raises(SystemExit) as excinfo:
            main(["search", netlist_file, "--workers", workers])
        assert excinfo.value.code == 2

    @pytest.mark.parametrize(
        "plan",
        [
            "explode:task",            # unknown fault kind
            "fail:everywhere",         # unknown site
            "fail:task@bogus=1",       # unknown coordinate
            "fail:task@dispatch=x",    # non-integer coordinate
            "fail:task@p=2.0",         # probability outside [0, 1]
            ";;",                      # empty specs
        ],
    )
    def test_bad_fault_plan_exits_2(self, netlist_file, capsys, plan):
        with pytest.raises(SystemExit) as excinfo:
            main(["partition", netlist_file, "--engine", "parallel",
                  "--fault-plan", plan])
        assert excinfo.value.code == 2
        assert "--fault-plan" in capsys.readouterr().err

    def test_fault_plan_requires_parallel_engine(self, netlist_file, capsys):
        code = main(["partition", netlist_file, "--engine", "scipy",
                     "--fault-plan", "fail:task@dispatch=0"])
        assert code == 2
        assert "requires --engine parallel" in capsys.readouterr().err

    def test_fault_plan_accepted_and_echoed(self, netlist_file, capsys):
        code = main(["partition", netlist_file, "--engine", "parallel",
                     "--height", "2", "--iterations", "1",
                     "--workers", "2",
                     "--fault-plan", "fail:task@dispatch=0,task=0"])
        assert code == 0
        out = capsys.readouterr().out
        assert "fault plan: fail:task@dispatch=0,task=0" in out
        assert "FLOW cost" in out


class TestUnreadableInput:
    """``partition`` (and friends) must exit 2 on unreadable netlists."""

    def test_missing_file_exits_2(self, tmp_path, capsys):
        missing = tmp_path / "nowhere.hgr"
        code = main(["partition", str(missing)])
        assert code == 2
        err = capsys.readouterr().err
        assert err.startswith("error: cannot read netlist")
        assert "nowhere.hgr" in err
        assert err.count("\n") == 1  # a single line, not a traceback

    def test_malformed_file_exits_2(self, tmp_path, capsys):
        bad = tmp_path / "bad.hgr"
        bad.write_text("this is not a netlist\n")
        code = main(["partition", str(bad)])
        assert code == 2
        assert "cannot read netlist" in capsys.readouterr().err

    @pytest.mark.parametrize("command", ["lowerbound", "search", "separator"])
    def test_other_readers_exit_2(self, command, tmp_path, capsys):
        code = main([command, str(tmp_path / "missing.hgr")])
        assert code == 2
        assert "cannot read netlist" in capsys.readouterr().err


class TestGenerateEdgeCases:
    """`generate --kind rent` must reject degenerate requests cleanly."""

    def test_single_node_exits_2(self, tmp_path, capsys):
        code = main(
            ["generate", str(tmp_path / "r.hgr"), "--kind", "rent",
             "--nodes", "1"]
        )
        assert code == 2
        err = capsys.readouterr().err
        assert err.startswith("error: cannot generate netlist")
        assert "two nodes" in err
        assert err.count("\n") == 1  # one line, not a traceback

    def test_zero_nodes_exits_2(self, tmp_path, capsys):
        code = main(
            ["generate", str(tmp_path / "r.hgr"), "--kind", "rent",
             "--nodes", "0"]
        )
        assert code == 2
        assert "cannot generate netlist" in capsys.readouterr().err

    def test_leaf_size_one_exits_2(self, tmp_path, capsys):
        code = main(
            ["generate", str(tmp_path / "r.hgr"), "--kind", "rent",
             "--nodes", "64", "--leaf-size", "1"]
        )
        assert code == 2
        assert "leaf_size" in capsys.readouterr().err

    def test_leaf_size_needs_rent(self, tmp_path, capsys):
        code = main(
            ["generate", str(tmp_path / "r.hgr"), "--kind", "planted",
             "--leaf-size", "4"]
        )
        assert code == 2
        assert "--leaf-size only applies" in capsys.readouterr().err

    def test_leaf_size_honoured(self, tmp_path):
        path = tmp_path / "r.hgr"
        assert main(
            ["generate", str(path), "--kind", "rent", "--nodes", "64",
             "--leaf-size", "8"]
        ) == 0
        assert read_hgr(path).num_nodes == 64

    def test_two_node_rent_is_valid(self, tmp_path):
        """The smallest legal rent instance still writes a valid netlist."""
        path = tmp_path / "r.hgr"
        assert main(
            ["generate", str(path), "--kind", "rent", "--nodes", "2"]
        ) == 0
        netlist = read_hgr(path)
        assert netlist.num_nodes == 2
        assert netlist.num_nets >= 1

    def test_zero_net_netlist_round_trips(self, tmp_path):
        """Zero-net hypergraphs survive the .hgr round trip."""
        from repro.hypergraph import Hypergraph

        path = tmp_path / "z.hgr"
        write_hgr(Hypergraph(5, nets=[]), path)
        back = read_hgr(path)
        assert back.num_nodes == 5
        assert back.num_nets == 0


class TestExactCommand:
    @pytest.fixture
    def small_file(self, tmp_path):
        from repro.hypergraph import Hypergraph

        netlist = Hypergraph(8, nets=[(i, i + 1) for i in range(7)])
        path = tmp_path / "small.hgr"
        write_hgr(netlist, path)
        return str(path)

    def test_exact_solves_small_instance(self, small_file, capsys):
        code = main(["exact", small_file, "--height", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "optimal cost" in out

    def test_exact_bnb_method(self, small_file, capsys):
        code = main(
            ["exact", small_file, "--height", "2", "--method", "bnb"]
        )
        assert code == 0
        assert "branch-bound" in capsys.readouterr().out

    def test_exact_dp_rejects_non_tree(self, tmp_path, capsys):
        from repro.hypergraph import Hypergraph

        netlist = Hypergraph(4, nets=[(0, 1), (1, 2), (2, 3), (0, 3), (0, 2)])
        path = tmp_path / "cyc.hgr"
        write_hgr(netlist, path)
        code = main(["exact", str(path), "--height", "2", "--method", "dp"])
        assert code == 2
        assert "tree" in capsys.readouterr().err

    def test_exact_ilp_without_pulp_exits_2(self, small_file, capsys):
        from repro.analysis.exact import HAS_PULP

        if HAS_PULP:
            pytest.skip("pulp installed; the gate does not trigger")
        code = main(
            ["exact", small_file, "--height", "2", "--method", "ilp"]
        )
        assert code == 2
        assert "pulp" in capsys.readouterr().err

    def test_exact_missing_file_exits_2(self, tmp_path, capsys):
        code = main(["exact", str(tmp_path / "missing.hgr")])
        assert code == 2
        assert "cannot read netlist" in capsys.readouterr().err


class TestVerifyOptimal:
    @pytest.fixture
    def small_file(self, tmp_path):
        from repro.hypergraph import Hypergraph

        netlist = Hypergraph(8, nets=[(i, i + 1) for i in range(7)])
        path = tmp_path / "small.hgr"
        write_hgr(netlist, path)
        return str(path)

    def test_reports_gap(self, small_file, capsys):
        code = main(
            ["partition", small_file, "--height", "2", "--verify-optimal"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "verify-optimal: optimum" in out
        assert "gap" in out

    def test_skips_on_large_instance(self, tmp_path, capsys):
        netlist = planted_hierarchy_hypergraph(128, height=2, seed=0)
        path = tmp_path / "big.hgr"
        write_hgr(netlist, path)
        code = main(
            ["partition", str(path), "--height", "2", "--verify-optimal"]
        )
        assert code == 0
        assert "verify-optimal: SKIP" in capsys.readouterr().out
