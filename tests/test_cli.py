"""Unit tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.hypergraph.generators import planted_hierarchy_hypergraph
from repro.hypergraph.io import read_hgr, write_hgr


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_generate_defaults(self):
        args = build_parser().parse_args(["generate", "out.hgr"])
        assert args.kind == "planted"
        assert args.nodes == 256


class TestGenerate:
    def test_writes_hgr(self, tmp_path, capsys):
        path = tmp_path / "out.hgr"
        code = main(["generate", str(path), "--nodes", "64", "--seed", "3"])
        assert code == 0
        netlist = read_hgr(path)
        assert netlist.num_nodes == 64
        assert "wrote 64 nodes" in capsys.readouterr().out

    def test_surrogate_kind(self, tmp_path, capsys):
        path = tmp_path / "c.hgr"
        code = main(
            ["generate", str(path), "--kind", "c1355", "--scale", "0.1"]
        )
        assert code == 0
        assert read_hgr(path).num_nodes == round(546 * 0.1)

    def test_random_kind(self, tmp_path):
        path = tmp_path / "r.hgr"
        assert main(["generate", str(path), "--kind", "random",
                     "--nodes", "40"]) == 0
        assert read_hgr(path).num_nodes == 40


class TestPartition:
    @pytest.fixture
    def netlist_file(self, tmp_path):
        netlist = planted_hierarchy_hypergraph(64, height=2, seed=0)
        path = tmp_path / "n.hgr"
        write_hgr(netlist, path)
        return str(path)

    @pytest.mark.parametrize("algorithm", ["flow", "gfm", "rfm"])
    def test_algorithms_run(self, netlist_file, capsys, algorithm):
        code = main(
            [
                "partition",
                netlist_file,
                "--algorithm",
                algorithm,
                "--height",
                "2",
                "--iterations",
                "1",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "cost" in out
        assert "WARNING" not in out

    def test_improve_flag(self, netlist_file, capsys):
        code = main(
            [
                "partition",
                netlist_file,
                "--algorithm",
                "rfm",
                "--height",
                "2",
                "--improve",
            ]
        )
        assert code == 0
        assert "after FM improvement" in capsys.readouterr().out


class TestLowerBound:
    def test_runs_on_small_input(self, tmp_path, capsys):
        netlist = planted_hierarchy_hypergraph(24, height=2, seed=1)
        path = tmp_path / "s.hgr"
        write_hgr(netlist, path)
        code = main(
            ["lowerbound", str(path), "--height", "2",
             "--max-iterations", "40"]
        )
        assert code == 0
        assert "LP lower bound" in capsys.readouterr().out


class TestTableCommand:
    def test_table1(self, capsys):
        code = main(["table", "1", "--scale", "0.1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "TABLE 1" in out
        assert "c7552" in out


class TestSearchCommand:
    def test_search_runs(self, tmp_path, capsys):
        netlist = planted_hierarchy_hypergraph(64, height=2, seed=0)
        path = tmp_path / "s.hgr"
        write_hgr(netlist, path)
        code = main(["search", str(path), "--heights", "1", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "best: height" in out

    def test_search_reads_bench_files(self, tmp_path, capsys):
        from repro.hypergraph.bench_format import write_bench

        netlist = planted_hierarchy_hypergraph(48, height=2, seed=1)
        path = tmp_path / "c.bench"
        write_bench(netlist, path)
        code = main(["search", str(path), "--heights", "1"])
        assert code == 0
        assert "height 1" in capsys.readouterr().out


class TestSeparatorCommand:
    def test_separator_runs(self, tmp_path, capsys):
        netlist = planted_hierarchy_hypergraph(64, height=2, seed=0)
        path = tmp_path / "s.hgr"
        write_hgr(netlist, path)
        code = main(["separator", str(path), "--rho", "0.3"])
        assert code == 0
        out = capsys.readouterr().out
        assert "pieces" in out
        assert "cut capacity" in out
