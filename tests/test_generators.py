"""Unit tests for the synthetic netlist generators."""

import pytest

from repro.errors import HypergraphError
from repro.hypergraph.expansion import to_graph
from repro.hypergraph.generators import (
    ISCAS85_SIZES,
    figure2_graph,
    figure2_hypergraph,
    grid_hypergraph,
    iscas85_surrogate,
    multiplier_array_hypergraph,
    planted_hierarchy_hypergraph,
    random_hypergraph,
)
from repro.hypergraph.metrics import is_connected, netlist_stats


class TestPlanted:
    def test_basic_counts(self):
        h = planted_hierarchy_hypergraph(128, height=3, seed=0)
        assert h.num_nodes == 128
        assert h.num_nets >= 120

    def test_deterministic(self):
        a = planted_hierarchy_hypergraph(96, seed=4)
        b = planted_hierarchy_hypergraph(96, seed=4)
        assert a.nets() == b.nets()

    def test_different_seeds_differ(self):
        a = planted_hierarchy_hypergraph(96, seed=1)
        b = planted_hierarchy_hypergraph(96, seed=2)
        assert a.nets() != b.nets()

    def test_locality_concentrates_nets(self):
        h = planted_hierarchy_hypergraph(
            256, height=2, seed=0, locality=(0.95, 0.04, 0.01)
        )
        clusters = 4
        intra = 0
        for pins in h.nets():
            blocks = {v * clusters // 256 for v in pins}
            if len(blocks) == 1:
                intra += 1
        assert intra / h.num_nets > 0.7

    def test_intra_span_limits_positions(self):
        h = planted_hierarchy_hypergraph(
            256, height=2, seed=0, intra_span=3,
            locality=(1.0, 0.0, 0.0),
        )
        # with pure intra locality and span 3, all nets are short index
        # ranges inside one cluster
        for pins in h.nets():
            assert max(pins) - min(pins) <= 2 * 3 + 1

    def test_too_few_nodes_rejected(self):
        with pytest.raises(HypergraphError):
            planted_hierarchy_hypergraph(8, height=4)


class TestMultiplierArray:
    def test_regular_structure(self):
        h = multiplier_array_hypergraph(320, width=16, seed=0)
        assert h.num_nodes == 320
        stats = netlist_stats(h)
        assert stats.max_net_size <= 5

    def test_connected(self):
        h = multiplier_array_hypergraph(320, width=16)
        assert is_connected(to_graph(h))

    def test_too_small_rejected(self):
        with pytest.raises(HypergraphError):
            multiplier_array_hypergraph(16, width=16)


class TestGridAndRandom:
    def test_grid_counts(self):
        h = grid_hypergraph(4, 5)
        assert h.num_nodes == 20
        assert h.num_nets == 4 * 4 + 3 * 5  # horizontal + vertical

    def test_grid_rejects_degenerate(self):
        with pytest.raises(HypergraphError):
            grid_hypergraph(1, 1)

    def test_random_is_connected(self):
        h = random_hypergraph(64, 100, seed=0)
        assert is_connected(to_graph(h))

    def test_random_rejects_too_few_nets(self):
        with pytest.raises(HypergraphError):
            random_hypergraph(10, 5)


class TestSurrogates:
    @pytest.mark.parametrize("circuit", sorted(ISCAS85_SIZES))
    def test_node_counts_match_paper(self, circuit):
        h = iscas85_surrogate(circuit)
        assert h.num_nodes == ISCAS85_SIZES[circuit][0]

    @pytest.mark.parametrize("circuit", sorted(ISCAS85_SIZES))
    def test_net_and_pin_counts_close(self, circuit):
        h = iscas85_surrogate(circuit)
        _nodes, nets, pins = ISCAS85_SIZES[circuit]
        assert abs(h.num_nets - nets) / nets < 0.05
        assert abs(h.num_pins - pins) / pins < 0.10

    @pytest.mark.parametrize("circuit", sorted(ISCAS85_SIZES))
    def test_dominant_component(self, circuit):
        # Real ISCAS85 circuits contain a few independent logic cones, so
        # surrogates need not be fully connected — but the main component
        # must dominate.
        from repro.hypergraph.metrics import connected_components

        components = connected_components(to_graph(iscas85_surrogate(circuit)))
        largest = max(len(c) for c in components)
        total = sum(len(c) for c in components)
        assert largest / total > 0.95

    def test_scale_shrinks(self):
        h = iscas85_surrogate("c7552", scale=0.25)
        assert h.num_nodes == round(3512 * 0.25)

    def test_unknown_circuit_rejected(self):
        with pytest.raises(HypergraphError):
            iscas85_surrogate("c17")


class TestFigure2Generators:
    def test_graph_and_hypergraph_agree(self):
        g = figure2_graph()
        h = figure2_hypergraph()
        assert g.num_edges == h.num_nets == 30
        assert set(g.edges()) == set(h.nets())
