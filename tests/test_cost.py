"""Unit tests for the hierarchical cost (Equation 1) and IncrementalCost."""

import random

import pytest

from repro.htp.cost import (
    IncrementalCost,
    induced_metric,
    net_cost,
    net_span,
    total_cost,
)
from repro.htp.hierarchy import figure2_hierarchy
from repro.htp.partition import PartitionTree
from repro.hypergraph import Hypergraph


class TestSpan:
    def test_internal_net_has_span_zero(
        self, fig2_hypergraph, fig2_optimal_partition
    ):
        # net 0 is (0,1), internal to the first leaf
        assert (
            net_span(fig2_hypergraph, fig2_optimal_partition, 0, 0) == 0
        )

    def test_level0_cut_net(self, fig2_hypergraph, fig2_optimal_partition):
        # the net (0,4) crosses leaves inside the same level-1 block
        net_id = fig2_hypergraph.nets().index((0, 4))
        assert net_span(fig2_hypergraph, fig2_optimal_partition, net_id, 0) == 2
        assert net_span(fig2_hypergraph, fig2_optimal_partition, net_id, 1) == 0

    def test_level1_cut_net(self, fig2_hypergraph, fig2_optimal_partition):
        net_id = fig2_hypergraph.nets().index((1, 9))
        assert net_span(fig2_hypergraph, fig2_optimal_partition, net_id, 0) == 2
        assert net_span(fig2_hypergraph, fig2_optimal_partition, net_id, 1) == 2


class TestCost:
    def test_figure2_optimal_cost_is_20(
        self, fig2_hypergraph, fig2_optimal_partition, fig2_spec
    ):
        assert total_cost(
            fig2_hypergraph, fig2_optimal_partition, fig2_spec
        ) == pytest.approx(20.0)

    def test_net_costs_match_paper_values(
        self, fig2_hypergraph, fig2_optimal_partition, fig2_spec
    ):
        # level-0-only cuts cost 2; level-1 cuts cost 6 (Figure 2)
        h = fig2_hypergraph
        for pins, expected in [((0, 4), 2.0), ((1, 9), 6.0), ((0, 1), 0.0)]:
            net_id = h.nets().index(pins)
            assert net_cost(
                h, fig2_optimal_partition, fig2_spec, net_id
            ) == pytest.approx(expected)

    def test_capacity_scales_cost(self, fig2_spec, fig2_optimal_partition):
        h = Hypergraph(
            16, nets=[(1, 9)], net_capacities=[3.0]
        )
        assert total_cost(
            h, fig2_optimal_partition, fig2_spec
        ) == pytest.approx(18.0)

    def test_induced_metric_values(
        self, fig2_hypergraph, fig2_optimal_partition, fig2_spec
    ):
        metric = induced_metric(
            fig2_hypergraph, fig2_optimal_partition, fig2_spec
        )
        assert set(round(d, 6) for d in metric) == {0.0, 2.0, 6.0}

    def test_three_way_span_costs_three(self, fig2_spec):
        # a 3-pin net spread over 3 leaves at level 0: span = 3
        h = Hypergraph(16, nets=[(0, 4, 8)])
        blocks = [[0, 1, 2, 3], [4, 5, 6, 7], [8, 9, 10, 11], [12, 13, 14, 15]]
        tree = PartitionTree.from_nested(
            [[blocks[0], blocks[1]], [blocks[2], blocks[3]]], 16
        )
        # span(e,0)=3, span(e,1)=2 -> cost = 1*3 + 2*2 = 7
        assert total_cost(h, tree, fig2_spec) == pytest.approx(7.0)


class TestIncrementalCost:
    def test_initial_cost_matches_total(
        self, fig2_hypergraph, fig2_optimal_partition, fig2_spec
    ):
        tracker = IncrementalCost(
            fig2_hypergraph, fig2_optimal_partition, fig2_spec
        )
        assert tracker.cost == pytest.approx(20.0)

    def test_gain_then_apply_consistency(
        self, fig2_hypergraph, fig2_optimal_partition, fig2_spec
    ):
        tracker = IncrementalCost(
            fig2_hypergraph, fig2_optimal_partition, fig2_spec
        )
        partition = tracker.partition
        target = partition.leaf_of(15)
        predicted = tracker.gain(0, target)
        realised = tracker.apply(0, target)
        assert predicted == pytest.approx(realised)
        assert tracker.cost == pytest.approx(tracker.recompute())

    def test_random_moves_stay_consistent(
        self, fig2_hypergraph, fig2_optimal_partition, fig2_spec
    ):
        tracker = IncrementalCost(
            fig2_hypergraph, fig2_optimal_partition, fig2_spec
        )
        partition = tracker.partition
        leaves = partition.leaves()
        rng = random.Random(4)
        for _ in range(40):
            node = rng.randrange(16)
            target = rng.choice(leaves)
            if target == partition.leaf_of(node):
                continue
            tracker.apply(node, target)
            assert tracker.cost == pytest.approx(tracker.recompute())

    def test_move_and_move_back_restores_cost(
        self, fig2_hypergraph, fig2_optimal_partition, fig2_spec
    ):
        tracker = IncrementalCost(
            fig2_hypergraph, fig2_optimal_partition, fig2_spec
        )
        partition = tracker.partition
        source = partition.leaf_of(3)
        target = partition.leaf_of(12)
        before = tracker.cost
        tracker.apply(3, target)
        tracker.apply(3, source)
        assert tracker.cost == pytest.approx(before)
