"""Unit tests for the multilevel bipartitioner and hierarchy search."""

import random

import pytest

from repro.errors import PartitionError
from repro.htp.hierarchy_search import best_hierarchy, search_hierarchies
from repro.hypergraph import Hypergraph
from repro.hypergraph.generators import planted_hierarchy_hypergraph
from repro.partitioning.fm import cut_capacity, fm_bipartition
from repro.partitioning.multilevel import (
    MultilevelConfig,
    _contract,
    _heavy_edge_matching,
    multilevel_bipartition,
)


class TestCoarsening:
    def test_matching_halves_node_count_roughly(self):
        h = planted_hierarchy_hypergraph(128, height=2, seed=0)
        coarse_of = _heavy_edge_matching(h, random.Random(0))
        num_coarse = max(coarse_of) + 1
        assert num_coarse < 128
        assert num_coarse >= 64  # pairs at best

    def test_contract_preserves_total_size(self):
        h = planted_hierarchy_hypergraph(96, height=2, seed=1)
        coarse_of = _heavy_edge_matching(h, random.Random(1))
        coarse = _contract(h, coarse_of)
        assert coarse.total_size() == pytest.approx(h.total_size())

    def test_contract_merges_parallel_nets(self):
        h = Hypergraph(4, nets=[(0, 1), (2, 3), (0, 2), (1, 3)])
        coarse = _contract(h, [0, 0, 1, 1])
        # nets (0,1),(2,3) vanish; (0,2),(1,3) merge into one net of cap 2
        assert coarse.num_nets == 1
        assert coarse.net_capacity(0) == 2.0

    def test_cut_is_preserved_under_projection(self):
        h = planted_hierarchy_hypergraph(64, height=1, seed=2)
        coarse_of = _heavy_edge_matching(h, random.Random(2))
        coarse = _contract(h, coarse_of)
        rng = random.Random(3)
        coarse_sides = [rng.randint(0, 1) for _ in range(coarse.num_nodes)]
        fine_sides = [coarse_sides[coarse_of[v]] for v in range(64)]
        assert cut_capacity(coarse, coarse_sides) == pytest.approx(
            cut_capacity(h, fine_sides)
        )


class TestMultilevel:
    def test_valid_balanced_result(self):
        h = planted_hierarchy_hypergraph(256, height=2, seed=4)
        sides, cut = multilevel_bipartition(h, 112, 144)
        size0 = sides.count(0)
        assert 112 <= size0 <= 144
        assert cut == pytest.approx(cut_capacity(h, sides))

    def test_beats_or_matches_flat_fm(self):
        h = planted_hierarchy_hypergraph(256, height=2, seed=5)
        _ml_sides, ml_cut = multilevel_bipartition(
            h, 112, 144, MultilevelConfig(seed=0)
        )
        _fm_sides, fm_cut = fm_bipartition(
            h, 112, 144, rng=random.Random(0)
        )
        assert ml_cut <= fm_cut * 1.5  # multilevel is at least competitive

    def test_degenerate_bound_rejected(self):
        h = planted_hierarchy_hypergraph(64, height=1, seed=0)
        with pytest.raises(PartitionError):
            multilevel_bipartition(h, 64, 64)

    def test_small_input_skips_coarsening(self):
        h = planted_hierarchy_hypergraph(32, height=1, seed=1)
        sides, _cut = multilevel_bipartition(
            h, 14, 18, MultilevelConfig(coarsest_size=64)
        )
        assert 14 <= sides.count(0) <= 18


class TestHierarchySearch:
    def test_sweep_returns_sorted_candidates(self):
        h = planted_hierarchy_hypergraph(96, height=2, seed=3)
        candidates = search_hierarchies(h, heights=(1, 2, 3), seed=0)
        assert len(candidates) == 3
        costs = [c.cost for c in candidates if c.valid]
        assert costs == sorted(costs)

    def test_infeasible_heights_skipped(self):
        h = planted_hierarchy_hypergraph(20, height=1, seed=0)
        candidates = search_hierarchies(h, heights=(1, 2, 8), seed=0)
        assert all(c.height in (1, 2) for c in candidates)

    def test_best_hierarchy_is_valid(self):
        h = planted_hierarchy_hypergraph(96, height=2, seed=6)
        best = best_hierarchy(h, heights=(1, 2, 3), seed=0)
        assert best.valid
        assert best.cost <= min(
            c.cost
            for c in search_hierarchies(h, heights=(1, 2, 3), seed=0)
            if c.valid
        ) + 1e-9

    def test_flow_algorithm_option(self):
        h = planted_hierarchy_hypergraph(64, height=2, seed=7)
        candidates = search_hierarchies(
            h, heights=(2,), algorithm="flow", seed=0
        )
        assert len(candidates) == 1
        assert candidates[0].valid

    def test_unknown_algorithm_rejected(self):
        h = planted_hierarchy_hypergraph(64, height=2, seed=7)
        with pytest.raises(ValueError):
            search_hierarchies(h, algorithm="magic")
