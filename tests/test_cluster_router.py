"""End-to-end tests of the cluster router over real sockets.

A :class:`RouterThread` and N :class:`ServerThread` workers bind
ephemeral ports per test; :class:`WorkerAgent` instances join and
heartbeat exactly as ``htp serve --join`` would.  Covers the three
submission tiers (placement, router LRU, cluster read-through), the
retry -> reroute -> dead failover ladder, journaled router recovery,
and the recovered-perf ``/metricsz`` fix on the worker side.
"""

import json
import time

import pytest

from repro.core.faults import FaultTolerance
from repro.htp.hierarchy import binary_hierarchy
from repro.hypergraph.generators import planted_hierarchy_hypergraph
from repro.service import (
    JobSpec,
    ResultCache,
    ServerThread,
    ServiceClient,
    ServiceClientError,
)
from repro.service.cluster import ROUTER_CACHE, RouterThread, WorkerAgent
from repro.service.server import make_worker_agent


@pytest.fixture(scope="module")
def netlist():
    return planted_hierarchy_hypergraph(48, height=2, seed=0)


@pytest.fixture(scope="module")
def hierarchy(netlist):
    return binary_hierarchy(netlist.total_size(), height=2)


def _spec(netlist, hierarchy, **config):
    config.setdefault("iterations", 1)
    return JobSpec.from_parts(netlist, hierarchy, config)


@pytest.fixture
def router(tmp_path):
    thread = RouterThread(
        router_kwargs={
            "journal_dir": tmp_path / "router-wal",
            "heartbeat_interval": 0.2,
            "probe_timeout": 1.0,
        }
    )
    yield thread
    thread.stop()


def _spawn_worker(tmp_path, router_url, worker_id, **manager_kwargs):
    manager_kwargs.setdefault(
        "cache",
        ResultCache(capacity=8, cache_dir=tmp_path / f"cache-{worker_id}"),
    )
    worker = ServerThread(manager_kwargs=manager_kwargs)
    agent = make_worker_agent(
        worker.manager,
        worker.url,
        {"router_url": router_url, "worker_id": worker_id},
    )
    # The same wiring serve() does: fencing + replica fetch on the
    # worker's HTTP surface.
    worker.server.cluster_view = agent.view
    worker.server.replicator = agent.replicator
    agent.start()
    assert agent.wait_joined(10.0), f"{worker_id} never joined the router"
    return worker, agent


@pytest.fixture
def cluster(tmp_path, router):
    workers, agents = [], []
    for index in range(2):
        worker, agent = _spawn_worker(tmp_path, router.url, f"w{index}")
        workers.append(worker)
        agents.append(agent)
    yield router, workers, agents
    for agent in agents:
        agent.stop()
    for worker in workers:
        worker.stop()


class TestRoutedSubmission:
    def test_submit_poll_result_through_router(
        self, cluster, netlist, hierarchy
    ):
        router, _workers, _agents = cluster
        client = ServiceClient(router.url)
        spec = _spec(netlist, hierarchy)
        submitted = client.submit_spec(spec)
        assert submitted["worker"] in ("w0", "w1")
        assert submitted["job_id"].startswith(spec.canonical_hash()[:12])
        status = client.wait(submitted["job_id"], timeout=60)
        assert status["state"] == "done"
        payload = client.result(submitted["job_id"])
        assert payload["spec_hash"] == spec.canonical_hash()
        metrics = client.metricsz()
        assert metrics["cluster"]["placements"] == 1
        assert metrics["cluster"]["workers"]["alive"] == 2

    def test_warm_resubmission_hits_router_cache(
        self, cluster, netlist, hierarchy
    ):
        router, _workers, _agents = cluster
        client = ServiceClient(router.url)
        spec = _spec(netlist, hierarchy)
        cold = client.submit_spec(spec)
        client.wait(cold["job_id"], timeout=60)
        cold_payload = client.result(cold["job_id"])
        warm = client.submit_spec(spec)
        assert warm["state"] == "done"
        assert warm["cached"] is True
        assert warm["worker"] == ROUTER_CACHE
        warm_payload = client.result(warm["job_id"])
        assert json.dumps(warm_payload, sort_keys=True) == json.dumps(
            cold_payload, sort_keys=True
        )
        # The warm answer never reached a worker.
        assert client.metricsz()["cluster"]["placements"] == 1

    def test_read_through_answers_from_worker_disk_cache(
        self, cluster, tmp_path, netlist, hierarchy
    ):
        """A brand-new router (cold LRU) serves a spec one worker solved
        earlier, via the cluster cache index + GET /cache/<hash>."""
        router, workers, agents = cluster
        client = ServiceClient(router.url)
        spec = _spec(netlist, hierarchy, seed=3)
        first = client.submit_spec(spec)
        client.wait(first["job_id"], timeout=60)
        reference = client.result(first["job_id"])

        fresh = RouterThread(router_kwargs={"heartbeat_interval": 0.2})
        fresh_agents = []
        try:
            for index, worker in enumerate(workers):
                agent = make_worker_agent(
                    worker.manager,
                    worker.url,
                    {"router_url": fresh.url, "worker_id": f"w{index}"},
                )
                agent.start()
                assert agent.wait_joined(10.0)
                fresh_agents.append(agent)
            fresh_client = ServiceClient(fresh.url)
            warm = fresh_client.submit_spec(spec)
            assert warm["state"] == "done"
            assert warm["worker"] == ROUTER_CACHE
            assert fresh_client.result(warm["job_id"]) == reference
            metrics = fresh_client.metricsz()
            assert metrics["cluster"]["remote_cache_hits"] == 1
            assert metrics["cluster"]["placements"] == 0
        finally:
            for agent in fresh_agents:
                agent.stop()
            fresh.stop()

    def test_unknown_job_is_404(self, cluster):
        router, _workers, _agents = cluster
        client = ServiceClient(router.url)
        with pytest.raises(ServiceClientError) as exc_info:
            client.status("no-such-job")
        assert exc_info.value.status == 404

    def test_no_workers_is_503(self, tmp_path, netlist, hierarchy):
        thread = RouterThread()
        try:
            client = ServiceClient(thread.url)
            with pytest.raises(ServiceClientError) as exc_info:
                client.submit_spec(_spec(netlist, hierarchy))
            assert exc_info.value.status == 503
        finally:
            thread.stop()

    def test_engine_filter_gates_placement(
        self, tmp_path, router, netlist, hierarchy
    ):
        """A worker that only announced 'python' never receives a scipy
        job — and with no eligible worker the router answers 503."""
        worker = ServerThread(manager_kwargs={})
        agent = WorkerAgent(
            router_url=router.url,
            worker_url=worker.url,
            worker_id="python-only",
            engines=("python",),
            interval=0.2,
        )
        agent.start()
        try:
            assert agent.wait_joined(10.0)
            client = ServiceClient(router.url)
            with pytest.raises(ServiceClientError) as exc_info:
                client.submit_spec(_spec(netlist, hierarchy, engine="scipy"))
            assert exc_info.value.status == 503
        finally:
            agent.stop()
            worker.stop()


class TestFailover:
    def test_dead_forward_reroutes_to_live_worker(
        self, tmp_path, router, netlist, hierarchy
    ):
        """The ladder in one submit: a registered-but-gone worker refuses
        the forward, is marked dead, and the job lands on the live one."""
        worker, agent = _spawn_worker(tmp_path, router.url, "alive")
        try:
            # A phantom worker: registered with a dead URL and enough
            # weight that the hash ring sends most keys its way first.
            phantom = WorkerAgent(
                router_url=router.url,
                worker_url="http://127.0.0.1:9",  # discard port: refused
                worker_id="phantom",
                weight=8.0,
                interval=3600.0,  # joins once, never heartbeats again
            )
            assert phantom.join_once()
            client = ServiceClient(router.url)
            spec = _spec(netlist, hierarchy, seed=11)
            submitted = client.submit_spec(spec)
            assert submitted["worker"] == "alive"
            status = client.wait(submitted["job_id"], timeout=60)
            assert status["state"] == "done"
            metrics = client.metricsz()
            workers = {
                doc["worker_id"]: doc
                for doc in client._request("GET", "/workers")["workers"]
            }
            assert workers["phantom"]["state"] == "dead"
            # Whether a reroute was journaled depends on which worker the
            # ring tried first; the job itself must always complete.
            assert metrics["cluster"]["placements"] >= 1
        finally:
            agent.stop()
            worker.stop()

    def test_missed_heartbeats_walk_the_ladder_to_dead(
        self, tmp_path, router
    ):
        worker, agent = _spawn_worker(tmp_path, router.url, "flaky")
        client = ServiceClient(router.url)
        agent.stop()  # heartbeats cease; the worker itself stays up
        worker.stop()  # and then the worker goes away entirely
        deadline = time.monotonic() + 30
        while time.monotonic() < deadline:
            workers = {
                doc["worker_id"]: doc
                for doc in client._request("GET", "/workers")["workers"]
            }
            if workers["flaky"]["state"] == "dead":
                break
            time.sleep(0.1)
        else:
            raise AssertionError(
                f"worker never declared dead: {workers['flaky']}"
            )

    def test_heartbeat_after_death_demands_rejoin(self, tmp_path, router):
        worker, agent = _spawn_worker(tmp_path, router.url, "lazarus")
        try:
            router.router.registry.mark_dead("lazarus")
            # The agent's next heartbeat gets 404 and transparently
            # re-registers under the same identity.
            assert agent.heartbeat_once()
            assert agent.rejoins == 1
            with router.router._lock:
                assert router.router.registry.get("lazarus").state == "alive"
        finally:
            agent.stop()
            worker.stop()


class TestRouterRecovery:
    def test_journal_replays_resolved_and_open_jobs(
        self, tmp_path, cluster, netlist, hierarchy
    ):
        router, workers, agents = cluster
        client = ServiceClient(router.url)
        spec = _spec(netlist, hierarchy, seed=21)
        submitted = client.submit_spec(spec)
        client.wait(submitted["job_id"], timeout=60)
        reference = client.result(submitted["job_id"])
        router.stop()

        reborn = RouterThread(
            router_kwargs={
                "journal_dir": tmp_path / "router-wal",
                "heartbeat_interval": 0.2,
            }
        )
        fresh_agents = []
        try:
            assert reborn.server.recovery_summary["recovered"] >= 1
            for index, worker in enumerate(workers):
                agent = make_worker_agent(
                    worker.manager,
                    worker.url,
                    {"router_url": reborn.url, "worker_id": f"w{index}"},
                )
                agent.start()
                assert agent.wait_joined(10.0)
                fresh_agents.append(agent)
            client = ServiceClient(reborn.url)
            listing = {job["job_id"] for job in client.jobs()["jobs"]}
            assert submitted["job_id"] in listing
            status = client.status(submitted["job_id"])
            assert status["state"] == "done"
            # The result payload outlived the router: re-fetched from a
            # worker's durable cache through the read-through tier.
            assert client.result(submitted["job_id"]) == reference
        finally:
            for agent in fresh_agents:
                agent.stop()
            reborn.stop()


class TestRecoveredPerfMerge:
    def test_metricsz_includes_recovered_job_counters(self, tmp_path):
        """A restarted worker's /metricsz must account for solver work
        journal-recovered done jobs did in the previous process."""
        netlist = planted_hierarchy_hypergraph(32, height=2, seed=5)
        hierarchy = binary_hierarchy(netlist.total_size(), height=2)
        spec = JobSpec.from_parts(netlist, hierarchy, {"iterations": 1})
        from repro.service import Journal

        def manager_kwargs():
            return {
                "cache": ResultCache(capacity=8, cache_dir=tmp_path / "cache"),
                "journal": Journal(tmp_path / "wal"),
            }

        with ServerThread(manager_kwargs=manager_kwargs()) as first:
            client = ServiceClient(first.url)
            job = client.submit_spec(spec)
            client.wait(job["job_id"], timeout=60)
            live = client.metricsz()["perf"]
            assert live["injections"] > 0

        with ServerThread(manager_kwargs=manager_kwargs()) as reborn:
            client = ServiceClient(reborn.url)
            status = client.status(job["job_id"])
            assert status["state"] == "done" and status["cached"] is True
            recovered = client.metricsz()["perf"]
            assert recovered["injections"] == live["injections"]
            assert recovered["dijkstra_calls"] == live["dijkstra_calls"]


class TestSubmitRetryLoop:
    """The htp submit 429 retry loop (no sockets: a scripted client)."""

    class _BusyClient:
        def __init__(self, failures, retry_after=0.25):
            self.failures = failures
            self.retry_after = retry_after
            self.calls = 0

        def submit_spec(self, spec, deadline=None):
            self.calls += 1
            if self.calls <= self.failures:
                error = ServiceClientError("queue full", status=429)
                error.retry_after = self.retry_after
                raise error
            return {"job_id": "j1", "state": "queued"}

    def test_retries_until_accepted(self):
        from repro.cli import _submit_with_retry

        client = self._BusyClient(failures=2)
        naps, notes = [], []
        doc = _submit_with_retry(
            client, spec=None, deadline=None,
            announce=notes.append, sleep=naps.append,
        )
        assert doc["job_id"] == "j1"
        assert client.calls == 3
        assert naps == [0.25, 0.25]  # honoured the server's estimate
        assert all("0.25s" in note for note in notes)

    def test_no_wait_raises_immediately(self):
        from repro.cli import _submit_with_retry

        client = self._BusyClient(failures=1)
        with pytest.raises(ServiceClientError):
            _submit_with_retry(
                client, spec=None, deadline=None, wait=False,
                sleep=lambda _s: pytest.fail("slept despite --no-wait"),
            )
        assert client.calls == 1

    def test_budget_is_bounded(self):
        from repro.cli import _submit_with_retry

        client = self._BusyClient(failures=99)
        naps = []
        with pytest.raises(ServiceClientError):
            _submit_with_retry(
                client, spec=None, deadline=None, limit=3,
                announce=lambda _m: None, sleep=naps.append,
            )
        assert client.calls == 4  # the first try + 3 retries
        assert len(naps) == 3

    def test_non_429_failures_pass_through(self):
        from repro.cli import _submit_with_retry

        class Refusing:
            def submit_spec(self, spec, deadline=None):
                raise ServiceClientError("cannot reach service", status=0)

        with pytest.raises(ServiceClientError) as exc_info:
            _submit_with_retry(
                Refusing(), spec=None, deadline=None,
                sleep=lambda _s: pytest.fail("slept on a non-429"),
            )
        assert exc_info.value.status == 0

    def test_fractional_retry_after_is_not_truncated(self):
        """A 1.5s server hint must sleep 1.5s and announce '1.5s' —
        the old int() path slept 1s and printed '1s'."""
        from repro.cli import _submit_with_retry

        client = self._BusyClient(failures=1, retry_after=1.5)
        naps, notes = [], []
        _submit_with_retry(
            client, spec=None, deadline=None,
            announce=notes.append, sleep=naps.append,
        )
        assert naps == [1.5]
        assert "1.5s" in notes[0]

    def test_max_wait_clips_the_last_sleep_and_then_raises(self):
        from repro.cli import _submit_with_retry

        client = self._BusyClient(failures=99, retry_after=0.4)
        naps = []
        with pytest.raises(ServiceClientError):
            _submit_with_retry(
                client, spec=None, deadline=None, limit=99, max_wait=1.0,
                announce=lambda _m: None, sleep=naps.append,
            )
        # 0.4 + 0.4 fit the budget, the third sleep is clipped to the
        # remaining 0.2, the fourth 429 finds the budget spent.
        assert naps == [0.4, 0.4, pytest.approx(0.2)]
        assert client.calls == 4

    def test_max_wait_zero_fails_on_first_busy(self):
        from repro.cli import _submit_with_retry

        client = self._BusyClient(failures=1)
        with pytest.raises(ServiceClientError):
            _submit_with_retry(
                client, spec=None, deadline=None, max_wait=0.0,
                announce=lambda _m: None,
                sleep=lambda _s: pytest.fail("slept with a zero budget"),
            )
        assert client.calls == 1

    def test_generous_max_wait_changes_nothing(self):
        from repro.cli import _submit_with_retry

        client = self._BusyClient(failures=2)
        naps = []
        doc = _submit_with_retry(
            client, spec=None, deadline=None, max_wait=60.0,
            announce=lambda _m: None, sleep=naps.append,
        )
        assert doc["job_id"] == "j1"
        assert naps == [0.25, 0.25]


class TestEpochFencing:
    """A worker that has seen a newer epoch refuses the old router."""

    def test_zombie_forward_is_refused_with_409(
        self, tmp_path, router, netlist, hierarchy
    ):
        worker, agent = _spawn_worker(tmp_path, router.url, "w0")
        try:
            # Some other router incarnation took over: this worker has
            # seen a newer fencing epoch than the (now zombie) router
            # under test will ever stamp.
            assert worker.server.cluster_view.admit_epoch(99)
            client = ServiceClient(router.url)
            with pytest.raises(ServiceClientError) as excinfo:
                client.submit_spec(_spec(netlist, hierarchy))
            # The job fails *at the zombie*: its only worker answered
            # 409, so the submission is rejected, never run twice.
            assert "stale router epoch" in str(excinfo.value)
        finally:
            agent.stop()
            worker.stop()


class TestRoutedCancel:
    """POST /jobs/<id>/cancel through the router reaches the worker."""

    def test_cancel_in_flight_job_through_router(self, cluster):
        router, _workers, _agents = cluster
        client = ServiceClient(router.url)
        big = planted_hierarchy_hypergraph(256, height=2, seed=3)
        spec = JobSpec.from_parts(
            big,
            binary_hierarchy(big.total_size(), height=2),
            {
                "iterations": 2,
                "constructions_per_metric": 2,
                "engine": "python",
                "seed": 3,
            },
        )
        submitted = client.submit_spec(spec)
        cancelled = client.cancel(submitted["job_id"])
        # The solve may have been mid-flight or (rarely) just finished;
        # either way the router answers with a terminal state and a
        # second cancel is an idempotent no-op on that state.
        assert cancelled["state"] in ("cancelled", "done")
        again = client.cancel(submitted["job_id"])
        assert again["state"] == cancelled["state"]

    def test_cancel_unknown_job_is_404(self, router):
        client = ServiceClient(router.url)
        with pytest.raises(ServiceClientError) as excinfo:
            client.cancel("no-such-job")
        assert excinfo.value.status == 404


class TestAgentStandbyRetarget:
    """An agent knocking on a dead router fails over to the standby."""

    def test_agent_retargets_the_announced_standby(self, router):
        # A port nothing listens on: every join attempt fails fast.
        agent = WorkerAgent(
            "http://127.0.0.1:9",
            "http://127.0.0.1:9",  # never probed: the join itself fails
            worker_id="wandering",
            interval=0.05,
            tolerance=FaultTolerance(task_retries=1, backoff_base=0.01),
            client_timeout=0.2,
            failover_after=2,
        )
        # The (now dead) primary gossiped the standby's URL while it
        # was still alive.
        agent.view.update({"epoch": 1, "standby": router.url})
        agent.start()
        try:
            assert agent.wait_joined(10.0), "agent never reached the standby"
            assert agent.router_url == router.url
            assert agent.failovers == 1
        finally:
            agent.stop()
