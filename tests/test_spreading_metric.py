"""Unit tests for Algorithm 2 (stochastic flow injection)."""

import random

import numpy as np
import pytest

from repro.core.constraints import SpreadingOracle
from repro.core.spreading_metric import (
    SpreadingMetricConfig,
    compute_spreading_metric,
)
from repro.htp.hierarchy import binary_hierarchy


class TestConfig:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            SpreadingMetricConfig(alpha=0.0)
        with pytest.raises(ValueError):
            SpreadingMetricConfig(delta=-1.0)
        with pytest.raises(ValueError):
            SpreadingMetricConfig(epsilon=0.0)
        with pytest.raises(ValueError):
            SpreadingMetricConfig(node_sample=0.0)


class TestFigure2:
    def test_produces_feasible_metric(self, fig2_graph, fig2_spec):
        result = compute_spreading_metric(
            fig2_graph, fig2_spec, SpreadingMetricConfig(seed=1)
        )
        assert result.satisfied
        oracle = SpreadingOracle(fig2_graph, fig2_spec, tol=1e-6)
        oracle.set_lengths(result.lengths)
        assert oracle.is_feasible()

    def test_cut_edges_get_longer_lengths(self, fig2_graph, fig2_spec):
        result = compute_spreading_metric(
            fig2_graph,
            fig2_spec,
            SpreadingMetricConfig(alpha=0.5, delta=0.1, seed=3),
        )
        lengths = result.lengths
        # edges inside 4-cliques vs the 6 planted cut edges
        intra, cut = [], []
        for eid, (u, v) in enumerate(fig2_graph.edges()):
            if u // 4 == v // 4:
                intra.append(lengths[eid])
            else:
                cut.append(lengths[eid])
        assert np.mean(cut) > np.mean(intra)

    def test_objective_matches_lengths(self, fig2_graph, fig2_spec):
        result = compute_spreading_metric(
            fig2_graph, fig2_spec, SpreadingMetricConfig(seed=0)
        )
        expected = float(
            np.dot(fig2_graph.capacities(), result.lengths)
        )
        assert result.objective == pytest.approx(expected)

    def test_deterministic_given_seed(self, fig2_graph, fig2_spec):
        config = SpreadingMetricConfig(seed=7)
        a = compute_spreading_metric(
            fig2_graph, fig2_spec, config, rng=random.Random(7)
        )
        b = compute_spreading_metric(
            fig2_graph, fig2_spec, config, rng=random.Random(7)
        )
        assert np.allclose(a.lengths, b.lengths)
        assert a.injections == b.injections

    def test_flows_monotone_from_epsilon(self, fig2_graph, fig2_spec):
        config = SpreadingMetricConfig(epsilon=0.01, seed=2)
        result = compute_spreading_metric(fig2_graph, fig2_spec, config)
        assert np.all(result.flows >= 0.01 - 1e-12)

    def test_python_engine_also_converges(self, fig2_graph, fig2_spec):
        result = compute_spreading_metric(
            fig2_graph,
            fig2_spec,
            SpreadingMetricConfig(engine="python", seed=1),
        )
        assert result.satisfied


class TestLargerInstance:
    def test_planted_instance_converges(self, medium_planted, medium_planted_spec):
        from repro.hypergraph.expansion import to_graph

        graph = to_graph(medium_planted)
        result = compute_spreading_metric(
            graph,
            medium_planted_spec,
            SpreadingMetricConfig(alpha=0.5, delta=0.05, seed=0),
        )
        assert result.satisfied
        assert result.injections > 0

    def test_node_sample_subsets_constraints(
        self, medium_planted, medium_planted_spec
    ):
        from repro.hypergraph.expansion import to_graph

        graph = to_graph(medium_planted)
        sampled = compute_spreading_metric(
            graph,
            medium_planted_spec,
            SpreadingMetricConfig(seed=0, node_sample=0.25),
        )
        # The sampled run still converges on its constraint subset and
        # produces a usable (positive) metric.
        assert sampled.satisfied
        assert np.all(sampled.lengths > 0)
