"""Unit tests for partition validation."""

import pytest

from repro.errors import PartitionError
from repro.htp.partition import PartitionTree
from repro.htp.validate import check_partition, partition_violations
from repro.hypergraph import Hypergraph


class TestValidation:
    def test_optimal_figure2_is_valid(
        self, fig2_hypergraph, fig2_optimal_partition, fig2_spec
    ):
        assert (
            partition_violations(
                fig2_hypergraph, fig2_optimal_partition, fig2_spec
            )
            == []
        )
        check_partition(fig2_hypergraph, fig2_optimal_partition, fig2_spec)

    def test_oversized_leaf_detected(self, fig2_hypergraph, fig2_spec):
        # 5 nodes in one leaf violates C_0 = 4
        nested = [
            [[0, 1, 2, 3, 4], [5, 6, 7]],
            [[8, 9, 10, 11], [12, 13, 14, 15]],
        ]
        tree = PartitionTree.from_nested(nested, 16)
        problems = partition_violations(fig2_hypergraph, tree, fig2_spec)
        assert any("C_0" in p for p in problems)
        with pytest.raises(PartitionError):
            check_partition(fig2_hypergraph, tree, fig2_spec)

    def test_branching_violation_detected(self, fig2_hypergraph, fig2_spec):
        # three leaves under one level-1 vertex violates K_1 = 2
        nested = [
            [[0, 1, 2], [3, 4, 5], [6, 7]],
            [[8, 9, 10, 11], [12, 13, 14, 15]],
        ]
        tree = PartitionTree.from_nested(nested, 16)
        problems = partition_violations(fig2_hypergraph, tree, fig2_spec)
        assert any("K_1" in p for p in problems)

    def test_node_count_mismatch(self, fig2_spec):
        h = Hypergraph(4, nets=[(0, 1), (2, 3)])
        tree = PartitionTree.from_nested([[0, 1], [2]], num_nodes=3)
        problems = partition_violations(h, tree, fig2_spec)
        assert any("covers" in p for p in problems)

    def test_level_count_mismatch(self, fig2_hypergraph, fig2_spec):
        tree = PartitionTree.from_nested(
            [list(range(8)), list(range(8, 16))], 16
        )
        problems = partition_violations(fig2_hypergraph, tree, fig2_spec)
        assert any("levels" in p for p in problems)

    def test_orphan_nodes_detected(self, fig2_hypergraph, fig2_spec):
        # An unfrozen tree can carry unassigned nodes; the validator
        # must report them instead of crashing on the missing ancestor
        # chains (freeze() would reject this tree outright).
        tree = PartitionTree(num_nodes=16, num_levels=2)
        mid = tree.add_vertex(level=1, parent=tree.root)
        leaf = tree.add_vertex(level=0, parent=mid)
        for node in range(4):  # nodes 4..15 stay orphaned
            tree.assign(node, leaf)
        problems = partition_violations(fig2_hypergraph, tree, fig2_spec)
        assert any("orphan" in p for p in problems)
        assert any("12" in p for p in problems)
        with pytest.raises(PartitionError, match="orphan"):
            check_partition(fig2_hypergraph, tree, fig2_spec)

    def test_orphan_reported_before_size_accounting(
        self, fig2_hypergraph, fig2_spec
    ):
        # The orphan report must short-circuit: size/branching checks on
        # a tree with unassigned nodes would be meaningless.
        tree = PartitionTree(num_nodes=16, num_levels=2)
        mid = tree.add_vertex(level=1, parent=tree.root)
        leaf = tree.add_vertex(level=0, parent=mid)
        for node in range(6):  # 6 > C_0 = 4, but orphans dominate
            tree.assign(node, leaf)
        problems = partition_violations(fig2_hypergraph, tree, fig2_spec)
        assert len(problems) == 1
        assert "orphan" in problems[0]
