"""Unit tests for partition validation."""

import pytest

from repro.errors import PartitionError
from repro.htp.partition import PartitionTree
from repro.htp.validate import check_partition, partition_violations
from repro.hypergraph import Hypergraph


class TestValidation:
    def test_optimal_figure2_is_valid(
        self, fig2_hypergraph, fig2_optimal_partition, fig2_spec
    ):
        assert (
            partition_violations(
                fig2_hypergraph, fig2_optimal_partition, fig2_spec
            )
            == []
        )
        check_partition(fig2_hypergraph, fig2_optimal_partition, fig2_spec)

    def test_oversized_leaf_detected(self, fig2_hypergraph, fig2_spec):
        # 5 nodes in one leaf violates C_0 = 4
        nested = [
            [[0, 1, 2, 3, 4], [5, 6, 7]],
            [[8, 9, 10, 11], [12, 13, 14, 15]],
        ]
        tree = PartitionTree.from_nested(nested, 16)
        problems = partition_violations(fig2_hypergraph, tree, fig2_spec)
        assert any("C_0" in p for p in problems)
        with pytest.raises(PartitionError):
            check_partition(fig2_hypergraph, tree, fig2_spec)

    def test_branching_violation_detected(self, fig2_hypergraph, fig2_spec):
        # three leaves under one level-1 vertex violates K_1 = 2
        nested = [
            [[0, 1, 2], [3, 4, 5], [6, 7]],
            [[8, 9, 10, 11], [12, 13, 14, 15]],
        ]
        tree = PartitionTree.from_nested(nested, 16)
        problems = partition_violations(fig2_hypergraph, tree, fig2_spec)
        assert any("K_1" in p for p in problems)

    def test_node_count_mismatch(self, fig2_spec):
        h = Hypergraph(4, nets=[(0, 1), (2, 3)])
        tree = PartitionTree.from_nested([[0, 1], [2]], num_nodes=3)
        problems = partition_violations(h, tree, fig2_spec)
        assert any("covers" in p for p in problems)

    def test_level_count_mismatch(self, fig2_hypergraph, fig2_spec):
        tree = PartitionTree.from_nested(
            [list(range(8)), list(range(8, 16))], 16
        )
        problems = partition_violations(fig2_hypergraph, tree, fig2_spec)
        assert any("levels" in p for p in problems)
