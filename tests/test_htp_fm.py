"""Unit tests for the hierarchical FM improvement phase."""

import random

import pytest

from repro.htp.cost import total_cost
from repro.htp.validate import check_partition
from repro.partitioning.htp_fm import HTPFMConfig, htp_fm_improve
from repro.partitioning.random_init import random_partition


class TestImprovement:
    def test_never_worsens(self, small_planted, small_planted_spec):
        initial = random_partition(
            small_planted, small_planted_spec, rng=random.Random(0)
        )
        result = htp_fm_improve(
            small_planted, initial, small_planted_spec
        )
        assert result.final_cost <= result.initial_cost + 1e-9

    def test_final_cost_is_exact(self, small_planted, small_planted_spec):
        initial = random_partition(
            small_planted, small_planted_spec, rng=random.Random(1)
        )
        result = htp_fm_improve(small_planted, initial, small_planted_spec)
        assert result.final_cost == pytest.approx(
            total_cost(small_planted, result.partition, small_planted_spec)
        )

    def test_result_is_valid(self, small_planted, small_planted_spec):
        initial = random_partition(
            small_planted, small_planted_spec, rng=random.Random(2)
        )
        result = htp_fm_improve(small_planted, initial, small_planted_spec)
        check_partition(small_planted, result.partition, small_planted_spec)

    def test_input_partition_unchanged(self, small_planted, small_planted_spec):
        initial = random_partition(
            small_planted, small_planted_spec, rng=random.Random(3)
        )
        before = total_cost(small_planted, initial, small_planted_spec)
        htp_fm_improve(small_planted, initial, small_planted_spec)
        after = total_cost(small_planted, initial, small_planted_spec)
        assert before == pytest.approx(after)

    def test_optimal_partition_stays_optimal(
        self, fig2_hypergraph, fig2_optimal_partition, fig2_spec
    ):
        result = htp_fm_improve(
            fig2_hypergraph, fig2_optimal_partition, fig2_spec
        )
        assert result.final_cost == pytest.approx(20.0)

    def test_substantial_improvement_from_random(
        self, fig2_hypergraph, fig2_spec
    ):
        initial = random_partition(
            fig2_hypergraph, fig2_spec, rng=random.Random(4)
        )
        result = htp_fm_improve(fig2_hypergraph, initial, fig2_spec)
        assert result.improvement > 0.2  # random Figure 2 is far from 20

    def test_improvement_property(self, fig2_hypergraph, fig2_spec):
        initial = random_partition(
            fig2_hypergraph, fig2_spec, rng=random.Random(5)
        )
        result = htp_fm_improve(fig2_hypergraph, initial, fig2_spec)
        expected = (
            result.initial_cost - result.final_cost
        ) / result.initial_cost
        assert result.improvement == pytest.approx(expected)

    def test_max_passes_respected(self, small_planted, small_planted_spec):
        initial = random_partition(
            small_planted, small_planted_spec, rng=random.Random(6)
        )
        result = htp_fm_improve(
            small_planted,
            initial,
            small_planted_spec,
            HTPFMConfig(max_passes=1),
        )
        assert result.passes == 1
