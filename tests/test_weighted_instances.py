"""Weighted netlists (non-unit capacities and sizes) across the pipeline.

The headline experiments use unit weights, but the library supports
weighted nets (``c(e)``) and sized nodes (``s(v)``) everywhere; these
tests pin the semantics down.
"""

import random

import pytest

from repro.core.flow_htp import FlowHTPConfig, flow_htp
from repro.htp.cost import IncrementalCost, net_cost, total_cost
from repro.htp.hierarchy import binary_hierarchy, figure2_hierarchy
from repro.htp.partition import PartitionTree
from repro.htp.validate import check_partition
from repro.hypergraph import Hypergraph
from repro.hypergraph.generators import (
    figure2_hypergraph,
    figure2_optimal_blocks,
    planted_hierarchy_hypergraph,
)
from repro.partitioning.fm import fm_bipartition
from repro.partitioning.gfm import gfm_partition
from repro.partitioning.htp_fm import htp_fm_improve
from repro.partitioning.rfm import rfm_partition


def weighted_figure2(scale=3.0):
    """Figure 2 with every net capacity multiplied by ``scale``."""
    base = figure2_hypergraph()
    return Hypergraph(
        16,
        nets=base.nets(),
        net_capacities=[scale] * base.num_nets,
        name="fig2w",
    )


@pytest.fixture
def optimal_partition():
    blocks = figure2_optimal_blocks()
    return PartitionTree.from_nested(
        [[blocks[0], blocks[1]], [blocks[2], blocks[3]]], 16
    )


class TestCapacityScaling:
    def test_total_cost_scales_linearly(self, optimal_partition):
        spec = figure2_hierarchy()
        unit = total_cost(figure2_hypergraph(), optimal_partition, spec)
        tripled = total_cost(weighted_figure2(3.0), optimal_partition, spec)
        assert tripled == pytest.approx(3 * unit)

    def test_heavy_net_dominates_fm_choice(self):
        # FM must route the cut around the heavy net
        h = Hypergraph(
            4,
            nets=[(0, 1), (1, 2), (2, 3)],
            net_capacities=[1.0, 100.0, 1.0],
        )
        _sides, cut = fm_bipartition(h, 2, 2, rng=random.Random(0))
        assert cut < 100.0

    def test_incremental_cost_with_capacities(self, optimal_partition):
        h = weighted_figure2(2.5)
        spec = figure2_hierarchy()
        tracker = IncrementalCost(h, optimal_partition, spec)
        rng = random.Random(1)
        leaves = optimal_partition.leaves()
        for _ in range(20):
            tracker.apply(rng.randrange(16), rng.choice(leaves))
        assert tracker.cost == pytest.approx(tracker.recompute())

    def test_flow_on_weighted_nets(self):
        h = weighted_figure2(4.0)
        spec = figure2_hierarchy()
        result = flow_htp(
            h, spec, FlowHTPConfig(iterations=2, seed=1)
        )
        check_partition(h, result.partition, spec)
        assert result.cost == pytest.approx(
            total_cost(h, result.partition, spec)
        )
        # optimum is 4x the unit optimum
        assert result.cost >= 80.0 - 1e-9


class TestSizedNodes:
    @pytest.fixture
    def sized_netlist(self):
        base = planted_hierarchy_hypergraph(80, height=2, seed=8)
        rng = random.Random(8)
        sizes = [rng.choice([1.0, 2.0, 3.0]) for _ in range(80)]
        return Hypergraph(80, nets=base.nets(), node_sizes=sizes, name="sized")

    def test_block_sizes_respected_by_gfm(self, sized_netlist):
        spec = binary_hierarchy(
            sized_netlist.total_size(), height=2, slack=0.3
        )
        tree = gfm_partition(sized_netlist, spec, rng=random.Random(0))
        check_partition(sized_netlist, tree, spec)

    def test_block_sizes_respected_by_rfm(self, sized_netlist):
        spec = binary_hierarchy(
            sized_netlist.total_size(), height=2, slack=0.3
        )
        tree = rfm_partition(sized_netlist, spec, rng=random.Random(0))
        check_partition(sized_netlist, tree, spec)

    def test_block_sizes_respected_by_flow(self, sized_netlist):
        spec = binary_hierarchy(
            sized_netlist.total_size(), height=2, slack=0.3
        )
        result = flow_htp(
            sized_netlist, spec, FlowHTPConfig(iterations=1, seed=0)
        )
        check_partition(sized_netlist, result.partition, spec)

    def test_fm_improvement_respects_sizes(self, sized_netlist):
        spec = binary_hierarchy(
            sized_netlist.total_size(), height=2, slack=0.3
        )
        tree = rfm_partition(sized_netlist, spec, rng=random.Random(1))
        improved = htp_fm_improve(sized_netlist, tree, spec)
        check_partition(sized_netlist, improved.partition, spec)
        assert improved.final_cost <= improved.initial_cost + 1e-9


class TestMixedWeights:
    def test_net_cost_respects_level_weights(self, optimal_partition):
        h = figure2_hypergraph()
        heavy_top = binary_hierarchy(16, height=2, slack=0.0, weights=(1, 10))
        light_top = binary_hierarchy(16, height=2, slack=0.0, weights=(1, 1))
        net_id = h.nets().index((1, 9))  # a level-1 cut net
        heavy = net_cost(h, optimal_partition, heavy_top, net_id)
        light = net_cost(h, optimal_partition, light_top, net_id)
        assert heavy > light
