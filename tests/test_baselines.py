"""Unit tests for the GFM / RFM constructive baselines and multiway."""

import random

import pytest

from repro.errors import PartitionError
from repro.htp.cost import total_cost
from repro.htp.hierarchy import binary_hierarchy
from repro.htp.validate import check_partition
from repro.hypergraph import Hypergraph
from repro.partitioning.fm import FMConfig
from repro.partitioning.gfm import gfm_partition
from repro.partitioning.multiway import recursive_bisection
from repro.partitioning.rfm import rfm_partition


class TestRecursiveBisection:
    def test_respects_capacity(self, small_planted):
        blocks = recursive_bisection(
            small_planted, num_parts=4, capacity=20, rng=random.Random(0)
        )
        assert len(blocks) == 4
        for block in blocks:
            assert small_planted.total_size(block) <= 20

    def test_blocks_partition_node_set(self, small_planted):
        blocks = recursive_bisection(
            small_planted, num_parts=4, capacity=20, rng=random.Random(1)
        )
        flat = sorted(v for block in blocks for v in block)
        assert flat == list(small_planted.nodes())

    def test_rejects_non_power_of_two(self, small_planted):
        with pytest.raises(PartitionError):
            recursive_bisection(small_planted, num_parts=3, capacity=30)

    def test_rejects_infeasible_capacity(self, small_planted):
        with pytest.raises(PartitionError):
            recursive_bisection(small_planted, num_parts=4, capacity=10)

    def test_single_part(self, small_planted):
        blocks = recursive_bisection(
            small_planted, num_parts=1, capacity=100
        )
        assert blocks == [list(small_planted.nodes())]


class TestGFM:
    def test_valid_partition(self, small_planted, small_planted_spec):
        tree = gfm_partition(
            small_planted, small_planted_spec, rng=random.Random(0)
        )
        check_partition(small_planted, tree, small_planted_spec)

    def test_leaf_count_matches_hierarchy(
        self, small_planted, small_planted_spec
    ):
        tree = gfm_partition(
            small_planted, small_planted_spec, rng=random.Random(0)
        )
        assert len(tree.leaves()) == 4  # binary, height 2

    def test_finds_figure2_optimum(
        self, fig2_hypergraph, fig2_spec
    ):
        tree = gfm_partition(
            fig2_hypergraph, fig2_spec, rng=random.Random(0)
        )
        assert total_cost(fig2_hypergraph, tree, fig2_spec) == pytest.approx(
            20.0
        )

    def test_deterministic_given_seed(self, small_planted, small_planted_spec):
        a = gfm_partition(small_planted, small_planted_spec, rng=random.Random(5))
        b = gfm_partition(small_planted, small_planted_spec, rng=random.Random(5))
        assert total_cost(
            small_planted, a, small_planted_spec
        ) == pytest.approx(
            total_cost(small_planted, b, small_planted_spec)
        )


class TestRFM:
    def test_valid_partition(self, small_planted, small_planted_spec):
        tree = rfm_partition(
            small_planted, small_planted_spec, rng=random.Random(0)
        )
        check_partition(small_planted, tree, small_planted_spec)

    def test_finds_figure2_optimum(self, fig2_hypergraph, fig2_spec):
        tree = rfm_partition(
            fig2_hypergraph, fig2_spec, rng=random.Random(0)
        )
        assert total_cost(fig2_hypergraph, tree, fig2_spec) == pytest.approx(
            20.0
        )

    def test_medium_instance(self, medium_planted, medium_planted_spec):
        tree = rfm_partition(
            medium_planted,
            medium_planted_spec,
            rng=random.Random(1),
            fm_config=FMConfig(restarts=1),
        )
        check_partition(medium_planted, tree, medium_planted_spec)

    def test_small_netlist_single_leaf(self):
        h = Hypergraph(3, nets=[(0, 1), (1, 2)])
        spec = binary_hierarchy(16, height=2)
        tree = rfm_partition(h, spec, rng=random.Random(0))
        assert len(tree.leaves()) == 1
