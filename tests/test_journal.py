"""The write-ahead job journal: records, torn tails, replay, recovery.

Covers the journal file layer (CRC-framed JSON lines, fsync policies,
tolerant scans), the pure :func:`replay` function (Hypothesis pins the
prefix-validity and idempotence properties), and the
:class:`JobManager` recovery contract — done jobs served from the
cache, queued jobs requeued in order, expired deadlines failed, and
admission control with ``Retry-After``.
"""

from __future__ import annotations

import asyncio
import json

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.errors import ServiceError
from repro.hypergraph.generators import planted_hierarchy_hypergraph
from repro.htp.hierarchy import binary_hierarchy
from repro.service.cache import ResultCache
from repro.service.jobs import AdmissionError, JobManager, JobSpec, JobState
from repro.service.journal import (
    Journal,
    decode_line,
    encode_line,
    replay,
)


@pytest.fixture(scope="module")
def netlist():
    return planted_hierarchy_hypergraph(32, height=2, seed=0)


@pytest.fixture(scope="module")
def hierarchy(netlist):
    return binary_hierarchy(netlist.total_size(), height=2)


def make_spec(netlist, hierarchy, seed=0):
    return JobSpec.from_parts(
        netlist,
        hierarchy,
        {
            "iterations": 1,
            "constructions_per_metric": 1,
            "seed": seed,
            "max_rounds": 8,
        },
    )


def run(coro):
    return asyncio.run(coro)


# ----------------------------------------------------------------------
# File layer
# ----------------------------------------------------------------------
class TestJournalFile:
    def test_append_scan_round_trip(self, tmp_path):
        journal = Journal(tmp_path)
        records = [
            {"type": "submitted", "job_id": "a-1", "spec_hash": "h",
             "spec": {"x": 1}},
            {"type": "state", "job_id": "a-1", "state": "running"},
        ]
        for record in records:
            journal.append(record)
        journal.close()
        assert Journal(tmp_path).scan() == records

    def test_torn_tail_is_counted_not_raised(self, tmp_path):
        journal = Journal(tmp_path)
        journal.append({"type": "submitted", "job_id": "a-1",
                        "spec_hash": "h", "spec": {}})
        journal.close()
        with open(journal.path, "a") as handle:
            handle.write('{"crc32":"00000000","record":{"type":"state"')
        reopened = Journal(tmp_path)
        records = reopened.scan()
        assert len(records) == 1
        assert reopened.counters.journal_torn_records == 1
        assert reopened.stats()["torn_discarded"] == 1

    def test_scribbled_middle_line_is_skipped(self, tmp_path):
        journal = Journal(tmp_path)
        for index in range(3):
            journal.append({"type": "state", "job_id": f"j-{index}",
                            "state": "running"})
        journal.close()
        lines = journal.path.read_text().splitlines()
        lines[1] = lines[1][:-10] + "corrupted!"
        journal.path.write_text("\n".join(lines) + "\n")
        reopened = Journal(tmp_path)
        records = reopened.scan()
        assert [r["job_id"] for r in records] == ["j-0", "j-2"]
        assert reopened.counters.journal_torn_records == 1

    def test_crc_catches_bit_flip(self):
        line = encode_line({"type": "state", "job_id": "a", "state": "done"})
        doc = json.loads(line)
        doc["record"]["state"] = "failed"
        assert decode_line(json.dumps(doc)) is None

    def test_missing_file_scans_empty(self, tmp_path):
        assert Journal(tmp_path / "nowhere").scan() == []

    def test_bad_fsync_policy_rejected(self, tmp_path):
        with pytest.raises(ServiceError, match="fsync"):
            Journal(tmp_path, fsync="sometimes")

    @pytest.mark.parametrize("policy", ["always", "batch", "never"])
    def test_fsync_policies_all_write(self, tmp_path, policy):
        journal = Journal(tmp_path / policy, fsync=policy)
        for index in range(40):
            journal.append({"type": "state", "job_id": f"j-{index}",
                            "state": "running"})
        journal.close()
        assert len(Journal(tmp_path / policy).scan()) == 40


# ----------------------------------------------------------------------
# Pure replay properties
# ----------------------------------------------------------------------
def _submitted(job_id, **extra):
    record = {"type": "submitted", "job_id": job_id,
              "spec_hash": "h" * 4, "spec": {"k": 1}}
    record.update(extra)
    return record


def _state(job_id, state, **extra):
    record = {"type": "state", "job_id": job_id, "state": state}
    record.update(extra)
    return record


class TestReplay:
    def test_lifecycle_fold(self):
        state = replay([
            _submitted("a-1"),
            _state("a-1", "running"),
            _state("a-1", "done"),
            _submitted("b-2", deadline_epoch=123.0),
        ])
        assert state.jobs["a-1"].state == "done"
        assert state.jobs["b-2"].state == "queued"
        assert state.jobs["b-2"].deadline_epoch == 123.0
        assert [j.job_id for j in state.in_order()] == ["a-1", "b-2"]

    def test_requeued_resets_to_queued(self):
        state = replay([
            _submitted("a-1"),
            _state("a-1", "running"),
            {"type": "requeued", "job_id": "a-1"},
        ])
        assert state.jobs["a-1"].state == "queued"

    def test_illegal_moves_are_skipped(self):
        state = replay([
            _submitted("a-1"),
            _state("a-1", "done", cached=True),  # queued -> done: legal
            _state("a-1", "running"),            # done -> running: skipped
            _state("zz", "done"),                # unknown job: skipped
            {"type": "???", "job_id": "a-1"},    # unknown type: skipped
        ])
        assert state.jobs["a-1"].state == "done"
        assert state.jobs["a-1"].cached is True
        assert state.skipped == 3


# A generator of arbitrary (often nonsensical) record streams over a
# small id space — replay must digest ANY of them without raising.
_ids = st.sampled_from(["a-1", "b-2", "c-3"])
_records = st.one_of(
    _ids.map(_submitted),
    st.tuples(
        _ids, st.sampled_from(["running", "done", "failed", "cancelled"])
    ).map(lambda pair: _state(*pair)),
    _ids.map(lambda job_id: {"type": "requeued", "job_id": job_id}),
    st.just({"type": "state"}),  # malformed: no job_id
)


class TestReplayProperties:
    @settings(
        max_examples=200, suppress_health_check=[HealthCheck.too_slow]
    )
    @given(st.lists(_records, max_size=30), st.data())
    def test_any_prefix_replays_to_valid_state(self, records, data):
        cut = data.draw(st.integers(0, len(records)))
        state = replay(records[:cut])
        for job in state.jobs.values():
            assert job.state in (
                "queued", "running", "done", "failed", "cancelled"
            )
            assert isinstance(job.spec_payload, dict)
        assert state.replayed == cut

    @settings(
        max_examples=200, suppress_health_check=[HealthCheck.too_slow]
    )
    @given(st.lists(_records, max_size=30))
    def test_replaying_twice_equals_once(self, records):
        once = replay(records)
        twice = replay(records)
        assert {k: vars(v) for k, v in once.jobs.items()} == {
            k: vars(v) for k, v in twice.jobs.items()
        }

    @settings(
        max_examples=100, suppress_health_check=[HealthCheck.too_slow]
    )
    @given(records=st.lists(_records, max_size=30))
    def test_torn_tail_equals_clean_prefix(self, tmp_path_factory, records):
        """A journal with a torn final record replays exactly like the
        journal without that record."""
        tmp_path = tmp_path_factory.mktemp("torn")
        journal = Journal(tmp_path)
        for record in records:
            journal.append(record)
        journal.close()
        with open(journal.path, "a") as handle:
            handle.write('{"crc32":"bad","record":{"type":"subm')  # torn
        scanned = Journal(tmp_path).scan()
        assert scanned == records  # tear dropped, prefix intact
        assert {k: vars(v) for k, v in replay(scanned).jobs.items()} == {
            k: vars(v) for k, v in replay(records).jobs.items()
        }


# ----------------------------------------------------------------------
# Manager recovery
# ----------------------------------------------------------------------
class TestManagerRecovery:
    def test_done_jobs_served_from_cache_without_rerun(
        self, tmp_path, netlist, hierarchy
    ):
        solves = {"n": 0}

        def counting_runner(spec):
            solves["n"] += 1
            from repro.service.jobs import run_spec

            return run_spec(spec)

        async def scenario():
            journal = Journal(tmp_path / "wal")
            cache = ResultCache(cache_dir=tmp_path / "cache")
            manager = JobManager(
                max_concurrency=1, cache=cache, journal=journal,
                runner=counting_runner,
            )
            await manager.start()
            job = manager.submit(make_spec(netlist, hierarchy))
            await manager._idle.wait()
            assert job.state == JobState.DONE
            journal.close()  # crash here
            first_solves = solves["n"]

            restarted = JobManager(
                max_concurrency=1,
                cache=ResultCache(cache_dir=tmp_path / "cache"),
                journal=Journal(tmp_path / "wal"),
                runner=counting_runner,
            )
            await restarted.start()
            summary = restarted.recover()
            await restarted._idle.wait()
            recovered = restarted.get(job.job_id)
            assert summary["done_from_cache"] == 1
            assert recovered.state == JobState.DONE
            assert recovered.recovered and recovered.cached
            assert recovered.result_payload == job.result_payload
            assert solves["n"] == first_solves  # never re-ran
            await restarted.shutdown()

        run(scenario())

    def test_queued_jobs_requeue_in_order(self, tmp_path, netlist, hierarchy):
        order = []

        def recording_runner(spec):
            order.append(spec.config["seed"])
            from repro.service.jobs import run_spec

            return run_spec(spec)

        async def scenario():
            journal = Journal(tmp_path / "wal")
            manager = JobManager(
                max_concurrency=1, journal=journal, runner=recording_runner
            )
            # Workers never started: jobs stay queued, then we "crash".
            ids = [
                manager.submit(make_spec(netlist, hierarchy, seed=seed)).job_id
                for seed in (3, 1, 2)
            ]
            journal.close()

            restarted = JobManager(
                max_concurrency=1,
                journal=Journal(tmp_path / "wal"),
                runner=recording_runner,
            )
            await restarted.start()
            summary = restarted.recover()
            assert summary["requeued"] == 3
            await restarted._idle.wait()
            assert order == [3, 1, 2]  # original submission order
            for job_id in ids:
                assert restarted.get(job_id).state == JobState.DONE
            await restarted.shutdown()

        run(scenario())

    def test_running_job_requeued_and_finishes(
        self, tmp_path, netlist, hierarchy
    ):
        async def scenario():
            journal = Journal(tmp_path / "wal")
            manager = JobManager(max_concurrency=1, journal=journal)
            spec = make_spec(netlist, hierarchy)
            job = manager.submit(spec)
            # Forge the crash moment: the journal says "running" but no
            # completion record ever landed.
            manager._journal_append(
                {"type": "state", "job_id": job.job_id, "state": "running"}
            )
            journal.close()

            restarted = JobManager(
                max_concurrency=1, journal=Journal(tmp_path / "wal")
            )
            await restarted.start()
            summary = restarted.recover()
            assert summary["requeued"] == 1
            await restarted._idle.wait()
            assert restarted.get(job.job_id).state == JobState.DONE
            await restarted.shutdown()

        run(scenario())

    def test_expired_deadline_fails_on_recovery(
        self, tmp_path, netlist, hierarchy
    ):
        async def scenario():
            journal = Journal(tmp_path / "wal")
            manager = JobManager(max_concurrency=1, journal=journal)
            job = manager.submit(
                make_spec(netlist, hierarchy), deadline=0.0001
            )
            journal.close()
            await asyncio.sleep(0.01)

            restarted = JobManager(
                max_concurrency=1, journal=Journal(tmp_path / "wal")
            )
            await restarted.start()
            summary = restarted.recover()
            assert summary["expired"] == 1
            recovered = restarted.get(job.job_id)
            assert recovered.state == JobState.FAILED
            assert "deadline" in recovered.error
            await restarted.shutdown()

        run(scenario())

    def test_sequence_resumes_past_recovered_ids(
        self, tmp_path, netlist, hierarchy
    ):
        async def scenario():
            journal = Journal(tmp_path / "wal")
            manager = JobManager(max_concurrency=1, journal=journal)
            old = manager.submit(make_spec(netlist, hierarchy))
            journal.close()

            restarted = JobManager(
                max_concurrency=1, journal=Journal(tmp_path / "wal")
            )
            await restarted.start()
            restarted.recover()
            fresh = restarted.submit(make_spec(netlist, hierarchy, seed=9))
            assert fresh.job_id != old.job_id
            old_seq = int(old.job_id.rsplit("-", 1)[-1])
            fresh_seq = int(fresh.job_id.rsplit("-", 1)[-1])
            assert fresh_seq > old_seq
            await restarted.shutdown(drain=False)

        run(scenario())

    def test_recover_without_journal_is_noop(self):
        manager = JobManager(max_concurrency=1)
        assert manager.recover()["recovered"] == 0


# ----------------------------------------------------------------------
# Admission control and deadlines
# ----------------------------------------------------------------------
class TestAdmissionControl:
    def test_overflow_rejected_with_retry_after(self, netlist, hierarchy):
        manager = JobManager(max_concurrency=1, max_queue_depth=2)
        # Workers not started: everything stays queued.
        manager.submit(make_spec(netlist, hierarchy, seed=1))
        manager.submit(make_spec(netlist, hierarchy, seed=2))
        with pytest.raises(AdmissionError) as excinfo:
            manager.submit(make_spec(netlist, hierarchy, seed=3))
        assert excinfo.value.retry_after >= 1.0
        assert manager.counters.admission_rejections == 1
        assert manager.queue_depth() == 2

    def test_queue_drains_and_admits_again(self, netlist, hierarchy):
        async def scenario():
            manager = JobManager(max_concurrency=1, max_queue_depth=1)
            await manager.start()
            manager.submit(make_spec(netlist, hierarchy, seed=1))
            await manager._idle.wait()
            assert manager.queue_depth() == 0
            job = manager.submit(make_spec(netlist, hierarchy, seed=2))
            await manager._idle.wait()
            assert job.state == JobState.DONE
            await manager.shutdown()

        run(scenario())

    def test_cache_hits_bypass_the_queue(self, tmp_path, netlist, hierarchy):
        async def scenario():
            cache = ResultCache(cache_dir=tmp_path / "cache")
            manager = JobManager(
                max_concurrency=1, cache=cache, max_queue_depth=1
            )
            await manager.start()
            spec = make_spec(netlist, hierarchy)
            manager.submit(spec)
            await manager._idle.wait()
            # Fill the queue with a never-started manager? No — just
            # verify a warm submit never counts against the depth.
            warm = manager.submit(spec)
            assert warm.cached and warm.state == JobState.DONE
            assert manager.queue_depth() == 0
            await manager.shutdown()

        run(scenario())


class TestDeadlines:
    def test_deadline_aborts_solver_with_final_checkpoint(
        self, tmp_path, netlist, hierarchy
    ):
        async def scenario():
            manager = JobManager(
                max_concurrency=1,
                checkpoint_root=tmp_path / "ckpt",
                job_timeout=30.0,
            )
            await manager.start()
            # A deadline so tight the first round poll already misses it.
            job = manager.submit(
                make_spec(netlist, hierarchy), deadline=1e-6
            )
            await manager._idle.wait()
            assert job.state == JobState.FAILED
            assert "deadline" in job.error
            await manager.shutdown()

        run(scenario())

    def test_generous_deadline_completes(self, netlist, hierarchy):
        async def scenario():
            manager = JobManager(max_concurrency=1)
            await manager.start()
            job = manager.submit(make_spec(netlist, hierarchy), deadline=60)
            await manager._idle.wait()
            assert job.state == JobState.DONE
            await manager.shutdown()

        run(scenario())
