"""Crash-safe solver checkpoints: atomicity, CRC, and bit-identical resume.

The headline contract: a ``flow_htp`` run killed at *any* round boundary
and resumed from its checkpoint directory produces output bit-identical
to the uninterrupted run — same cost, same partition, same metric
arrays, same counters-visible behaviour.  The kill is simulated with an
``abort_check`` that trips after N polls (the same cooperative exit a
deadline or cancel uses), which exercises exactly the state a SIGKILL
would leave behind: the newest atomic checkpoint file.
"""

from __future__ import annotations

import json
import random

import numpy as np
import pytest

from repro.core.checkpoint import (
    FlowCheckpointer,
    MetricCheckpoint,
    decode_array,
    decode_rng_state,
    encode_array,
    encode_rng_state,
    load_flow_resume,
    load_latest_checkpoint,
    newest_checkpoint_age,
    read_checkpoint_file,
    run_fingerprint,
    write_checkpoint_file,
)
from repro.core.flow_htp import FlowHTPConfig, flow_htp
from repro.core.perf import PerfCounters
from repro.core.spreading_metric import SpreadingMetricConfig
from repro.errors import CheckpointError, SolverAborted
from repro.htp.hierarchy import binary_hierarchy
from repro.hypergraph.generators import planted_hierarchy_hypergraph


@pytest.fixture(scope="module")
def instance():
    hypergraph = planted_hierarchy_hypergraph(48, height=2, seed=3)
    spec = binary_hierarchy(hypergraph.total_size(), height=2)
    config = FlowHTPConfig(
        iterations=2,
        constructions_per_metric=2,
        seed=11,
        metric=SpreadingMetricConfig(delta=0.3, max_rounds=24, seed=11),
    )
    return hypergraph, spec, config


@pytest.fixture(scope="module")
def reference(instance):
    hypergraph, spec, config = instance
    return flow_htp(hypergraph, spec, config)


def _assert_identical(result, reference):
    assert result.cost == reference.cost
    assert result.iteration_costs == reference.iteration_costs
    assert result.metric_objectives == reference.metric_objectives
    assert result.partition.to_dict() == reference.partition.to_dict()
    for ours, theirs in zip(result.metric_results, reference.metric_results):
        np.testing.assert_array_equal(ours.lengths, theirs.lengths)
        np.testing.assert_array_equal(ours.flows, theirs.flows)


class TestEncoding:
    def test_array_round_trip_is_bit_exact(self):
        values = np.array([0.1, 1e-300, np.pi, -0.0, 7.5e200])
        decoded = decode_array(encode_array(values))
        assert decoded.dtype == values.dtype
        assert decoded.tobytes() == values.tobytes()

    def test_rng_state_round_trip(self):
        rng = random.Random(42)
        rng.random()
        state = rng.getstate()
        assert decode_rng_state(encode_rng_state(state)) == state
        clone = random.Random()
        clone.setstate(decode_rng_state(encode_rng_state(state)))
        assert [clone.random() for _ in range(5)] == [
            rng.random() for _ in range(5)
        ]


class TestCheckpointFiles:
    def test_atomic_write_and_read(self, tmp_path):
        payload = {"kind": "test", "value": [1, 2, 3]}
        path = write_checkpoint_file(tmp_path, 4, payload)
        assert path.name == "ckpt-00000004.json"
        assert list(tmp_path.glob("*.tmp")) == []
        assert read_checkpoint_file(path) == payload

    def test_crc_failure_raises(self, tmp_path):
        path = write_checkpoint_file(tmp_path, 1, {"a": 1})
        doc = json.loads(path.read_text())
        doc["payload"]["a"] = 2  # payload no longer matches the CRC
        path.write_text(json.dumps(doc))
        with pytest.raises(CheckpointError, match="CRC"):
            read_checkpoint_file(path)

    def test_torn_file_is_discarded_not_raised(self, tmp_path):
        counters = PerfCounters()
        write_checkpoint_file(tmp_path, 1, {"fingerprint": "f", "n": 1})
        torn = write_checkpoint_file(
            tmp_path, 2, {"fingerprint": "f", "n": 2}
        )
        torn.write_text(torn.read_text()[:-9])  # simulate a torn write
        seq, payload = load_latest_checkpoint(
            tmp_path, fingerprint="f", counters=counters
        )
        assert (seq, payload["n"]) == (1, 1)
        assert counters.checkpoints_discarded == 1

    def test_stale_fingerprint_is_skipped(self, tmp_path):
        counters = PerfCounters()
        write_checkpoint_file(tmp_path, 1, {"fingerprint": "old", "n": 1})
        assert (
            load_latest_checkpoint(
                tmp_path, fingerprint="new", counters=counters
            )
            is None
        )
        assert counters.checkpoints_discarded == 1

    def test_missing_directory_is_none(self, tmp_path):
        assert load_latest_checkpoint(tmp_path / "absent") is None
        assert newest_checkpoint_age(tmp_path / "absent") is None

    def test_newest_checkpoint_age(self, tmp_path):
        write_checkpoint_file(tmp_path, 1, {"n": 1})
        age = newest_checkpoint_age(tmp_path)
        assert age is not None and 0 <= age < 60


class TestFingerprint:
    def test_fingerprint_excludes_engine(self, instance):
        hypergraph, spec, config = instance
        base = run_fingerprint(hypergraph, spec, config)
        other_engine = FlowHTPConfig(
            iterations=config.iterations,
            constructions_per_metric=config.constructions_per_metric,
            seed=config.seed,
            metric=SpreadingMetricConfig(
                delta=0.3, max_rounds=24, seed=11, engine="python"
            ),
        )
        # Engines are bit-identical for a fixed seed, so cross-engine
        # resume is allowed: the fingerprint must not see the engine.
        assert run_fingerprint(hypergraph, spec, other_engine) == base

    def test_fingerprint_sees_solver_knobs(self, instance):
        hypergraph, spec, config = instance
        base = run_fingerprint(hypergraph, spec, config)
        changed = FlowHTPConfig(
            iterations=config.iterations,
            constructions_per_metric=config.constructions_per_metric,
            seed=config.seed + 1,
            metric=SpreadingMetricConfig(delta=0.3, max_rounds=24, seed=12),
        )
        assert run_fingerprint(hypergraph, spec, changed) != base


@pytest.fixture(scope="module")
def total_polls(instance):
    """Abort polls an uninterrupted run makes (the kill-point space)."""
    hypergraph, spec, config = instance
    polls = {"n": 0}

    def count():
        polls["n"] += 1
        return False

    flow_htp(hypergraph, spec, config, abort_check=count)
    return polls["n"]


class TestBitIdenticalResume:
    @pytest.mark.parametrize("fraction", [0.05, 0.25, 0.5, 0.75, 0.95])
    def test_killed_run_resumes_bit_identical(
        self, tmp_path, instance, reference, total_polls, fraction
    ):
        # Kill points are spread across the whole run, so every region
        # of the round loop (early, mid, final iteration) gets covered
        # whatever the instance's actual round count turns out to be.
        kill_after = max(1, min(total_polls - 1, int(total_polls * fraction)))
        hypergraph, spec, config = instance
        ckpt = tmp_path / f"ckpt-{kill_after}"
        polls = {"n": 0}

        def killer():
            polls["n"] += 1
            if polls["n"] > kill_after:
                return "simulated crash"
            return False

        with pytest.raises(SolverAborted, match="simulated crash"):
            flow_htp(
                hypergraph,
                spec,
                config,
                checkpoint_dir=ckpt,
                abort_check=killer,
            )
        result = flow_htp(
            hypergraph, spec, config, checkpoint_dir=ckpt, resume_from=ckpt
        )
        _assert_identical(result, reference)
        assert result.perf.checkpoint_resumes >= 1

    def test_repeated_kills_still_converge(
        self, tmp_path, instance, reference
    ):
        hypergraph, spec, config = instance
        ckpt = tmp_path / "ckpt-repeated"
        survived = None
        for _round in range(40):
            polls = {"n": 0}

            def killer():
                polls["n"] += 1
                return "crash again" if polls["n"] > 2 else False

            try:
                survived = flow_htp(
                    hypergraph,
                    spec,
                    config,
                    checkpoint_dir=ckpt,
                    resume_from=ckpt,
                    abort_check=killer,
                )
                break
            except SolverAborted:
                continue
        assert survived is not None, "run never finished despite resumes"
        _assert_identical(survived, reference)

    def test_uninterrupted_checkpointed_run_matches(
        self, tmp_path, instance, reference
    ):
        hypergraph, spec, config = instance
        result = flow_htp(
            hypergraph, spec, config, checkpoint_dir=tmp_path / "c"
        )
        _assert_identical(result, reference)
        assert result.perf.checkpoints_written > 0

    def test_resume_from_empty_directory_is_cold_start(
        self, tmp_path, instance, reference
    ):
        hypergraph, spec, config = instance
        empty = tmp_path / "never-written"
        result = flow_htp(hypergraph, spec, config, resume_from=empty)
        _assert_identical(result, reference)

    def test_stale_checkpoints_are_ignored(
        self, tmp_path, instance, reference
    ):
        hypergraph, spec, config = instance
        ckpt = tmp_path / "stale"
        counters_before = PerfCounters()
        write_checkpoint_file(
            ckpt,
            999,
            {"kind": "flow-htp", "fingerprint": "not-this-run", "n": 1},
        )
        result = flow_htp(
            hypergraph, spec, config, checkpoint_dir=ckpt, resume_from=ckpt
        )
        _assert_identical(result, reference)
        assert result.perf.checkpoints_discarded >= 1
        del counters_before

    def test_completed_run_resume_skips_solver(self, tmp_path, instance):
        hypergraph, spec, config = instance
        ckpt = tmp_path / "completed"
        first = flow_htp(hypergraph, spec, config, checkpoint_dir=ckpt)
        second = flow_htp(
            hypergraph, spec, config, checkpoint_dir=ckpt, resume_from=ckpt
        )
        _assert_identical(second, first)
        # Everything was replayed from the final checkpoint: no fresh
        # metric work was needed for already-completed iterations.
        assert second.perf.checkpoint_resumes >= 1


class TestAbortSemantics:
    def test_abort_leaves_final_checkpoint(self, tmp_path, instance):
        hypergraph, spec, config = instance
        ckpt = tmp_path / "final"
        polls = {"n": 0}

        def killer():
            polls["n"] += 1
            return "stop" if polls["n"] > 3 else False

        with pytest.raises(SolverAborted):
            flow_htp(
                hypergraph,
                spec,
                config,
                checkpoint_dir=ckpt,
                abort_check=killer,
            )
        loaded = load_flow_resume(
            ckpt, run_fingerprint(hypergraph, spec, config)
        )
        assert loaded is not None
        metric_doc = loaded.get("metric")
        if metric_doc is not None:
            restored = MetricCheckpoint.from_payload(metric_doc)
            assert restored.flows.shape[0] > 0

    def test_abort_without_checkpoint_dir_still_raises(self, instance):
        hypergraph, spec, config = instance
        with pytest.raises(SolverAborted, match="immediately"):
            flow_htp(
                hypergraph, spec, config, abort_check=lambda: "immediately"
            )


class TestFlowCheckpointerPruning:
    def test_keeps_only_newest_files(self, tmp_path):
        checkpointer = FlowCheckpointer(
            tmp_path, fingerprint="f", every=1, keep=3
        )
        for index in range(8):
            checkpointer._write({"n": index})
        remaining = sorted(p.name for p in tmp_path.glob("ckpt-*.json"))
        assert len(remaining) == 3
        seq, payload = load_latest_checkpoint(tmp_path, fingerprint="f")
        assert payload["metric"] == {"n": 7}
