"""Unit tests for the spreading lower-bound function g."""

import numpy as np
import pytest

from repro.core.gfunc import spreading_bound, spreading_bound_array
from repro.htp.hierarchy import HierarchySpec, figure2_hierarchy


class TestFigure2Values:
    def test_zero_below_leaf_capacity(self):
        spec = figure2_hierarchy()
        for x in (0.5, 1, 4):
            assert spreading_bound(spec, x) == 0.0

    def test_single_level_piece(self):
        spec = figure2_hierarchy()
        # C_0=4 < x <= C_1=8: g = 2*(x-4)*w0 = 2*(x-4)
        assert spreading_bound(spec, 5) == pytest.approx(2.0)
        assert spreading_bound(spec, 8) == pytest.approx(8.0)

    def test_two_level_piece(self):
        spec = figure2_hierarchy()
        # 8 < x <= 16: g = 2*(x-4)*1 + 2*(x-8)*2
        assert spreading_bound(spec, 9) == pytest.approx(2 * 5 + 4 * 1)
        assert spreading_bound(spec, 16) == pytest.approx(2 * 12 + 4 * 8)


class TestProperties:
    def test_continuous_at_breakpoints(self):
        spec = figure2_hierarchy()
        for capacity in spec.capacities[:-1]:
            below = spreading_bound(spec, capacity - 1e-9)
            above = spreading_bound(spec, capacity + 1e-9)
            assert above == pytest.approx(below, abs=1e-6)

    def test_nondecreasing(self):
        spec = HierarchySpec((3, 9, 20, 50), (2, 3, 2), (1.0, 0.5, 2.0))
        xs = np.linspace(0, 60, 500)
        values = spreading_bound_array(spec, xs)
        assert np.all(np.diff(values) >= -1e-12)

    def test_vectorised_matches_scalar(self):
        spec = figure2_hierarchy()
        xs = np.array([0.0, 3.7, 4.0, 5.5, 8.0, 12.2, 16.0])
        vec = spreading_bound_array(spec, xs)
        for x, v in zip(xs, vec):
            assert v == pytest.approx(spreading_bound(spec, float(x)))

    def test_weights_scale_pieces(self):
        light = HierarchySpec((4, 8, 16), (2, 2), (1.0, 1.0))
        heavy = HierarchySpec((4, 8, 16), (2, 2), (2.0, 2.0))
        assert spreading_bound(heavy, 10) == pytest.approx(
            2 * spreading_bound(light, 10)
        )

    def test_above_root_capacity_keeps_growing(self):
        spec = figure2_hierarchy()
        assert spreading_bound(spec, 32) > spreading_bound(spec, 16)
