"""Unit tests for ratio cuts (heuristic vs exact)."""

import random

import pytest

from repro.core.ratio_cut import exact_ratio_cut, ratio_cut, ratio_cut_value
from repro.errors import PartitionError
from repro.hypergraph import Hypergraph
from repro.hypergraph.generators import figure2_graph, figure2_hypergraph


class TestRatioValue:
    def test_simple(self):
        h = Hypergraph(4, nets=[(0, 1), (1, 2), (2, 3)])
        cut, ratio = ratio_cut_value(h, [0, 1])
        assert cut == 1.0
        assert ratio == pytest.approx(1.0 / 4.0)

    def test_empty_side_rejected(self):
        h = Hypergraph(3, nets=[(0, 1), (1, 2)])
        with pytest.raises(PartitionError):
            ratio_cut_value(h, [])
        with pytest.raises(PartitionError):
            ratio_cut_value(h, [0, 1, 2])


class TestExact:
    def test_two_cliques_with_bridge(self):
        nets = []
        for base in (0, 3):
            for i in range(3):
                for j in range(i + 1, 3):
                    nets.append((base + i, base + j))
        nets.append((0, 3))
        h = Hypergraph(6, nets=nets)
        result = exact_ratio_cut(h)
        assert sorted(result.side) in ([0, 1, 2], [3, 4, 5])
        assert result.cut_capacity == 1.0
        assert result.ratio == pytest.approx(1.0 / 9.0)

    def test_too_large_rejected(self):
        h = Hypergraph(17, nets=[(i, i + 1) for i in range(16)])
        with pytest.raises(PartitionError):
            exact_ratio_cut(h)


class TestHeuristic:
    def test_matches_exact_on_figure2(self):
        h = figure2_hypergraph()
        heuristic = ratio_cut(
            h, graph=figure2_graph(), rng=random.Random(0), restarts=6
        )
        exact = exact_ratio_cut(h)
        # the planted 8|8 cut of capacity 2 (ratio 2/64) is optimal
        assert exact.ratio == pytest.approx(2.0 / 64.0)
        assert heuristic.ratio <= exact.ratio * 2.0
        # sides are consistent
        cut, ratio = ratio_cut_value(h, heuristic.side)
        assert cut == pytest.approx(heuristic.cut_capacity)
        assert ratio == pytest.approx(heuristic.ratio)

    def test_chain_prefers_middle(self):
        h = Hypergraph(8, nets=[(i, i + 1) for i in range(7)])
        result = ratio_cut(h, rng=random.Random(1), restarts=4)
        # any chain cut costs 1; ratio minimised at the balanced middle
        assert result.cut_capacity == 1.0
        assert len(result.side) in (3, 4, 5)

    def test_tiny_rejected(self):
        h = Hypergraph(2, nets=[(0, 1)])
        sub, _map = h.subhypergraph([0, 1])
        result = ratio_cut(sub, rng=random.Random(0))
        assert len(result.side) == 1  # only one possible split shape
