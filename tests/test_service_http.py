"""End-to-end tests of the partitioning service over a real socket.

A :class:`ServerThread` binds an ephemeral port per test; the blocking
:class:`ServiceClient` talks to it from the test thread.  The warm-hit
test is the PR's acceptance criterion: an identical JobSpec resubmitted
warm returns a bit-identical result while the spreading-metric solver
counters stand still.
"""

import json
import threading
import time

import pytest

from repro.core.flow_htp import FlowHTPResult, flow_htp
from repro.htp.cost import total_cost
from repro.htp.hierarchy import binary_hierarchy
from repro.hypergraph.generators import planted_hierarchy_hypergraph
from repro.service import (
    JobSpec,
    JobState,
    ResultCache,
    ServerThread,
    ServiceClient,
    ServiceClientError,
)


@pytest.fixture(scope="module")
def netlist():
    return planted_hierarchy_hypergraph(48, height=2, seed=0)


@pytest.fixture(scope="module")
def hierarchy(netlist):
    return binary_hierarchy(netlist.total_size(), height=2)


@pytest.fixture
def spec(netlist, hierarchy):
    return JobSpec.from_parts(netlist, hierarchy, {"iterations": 1})


@pytest.fixture
def server(tmp_path):
    thread = ServerThread(
        manager_kwargs={
            "cache": ResultCache(capacity=8, cache_dir=tmp_path / "cache")
        }
    )
    yield thread
    thread.stop()


@pytest.fixture
def client(server):
    return ServiceClient(server.url)


class TestEndToEnd:
    def test_submit_poll_result_smoke(self, client, spec, netlist, hierarchy):
        """The canonical flow: submit -> poll -> result, over the wire."""
        submitted = client.submit_spec(spec)
        assert submitted["state"] in ("queued", "running", "done")
        status = client.wait(submitted["job_id"])
        assert status["state"] == "done"
        payload = client.result(submitted["job_id"])
        assert payload["spec_hash"] == spec.canonical_hash()
        result = FlowHTPResult.from_dict(payload["result"])
        # The served partition is genuinely the solver's answer: same
        # cost as a local run of the same spec, and internally consistent.
        local = flow_htp(netlist, hierarchy, spec.build_config())
        assert result.cost == local.cost
        assert (
            total_cost(netlist, result.partition, hierarchy) == result.cost
        )

    def test_warm_submit_is_bit_identical_and_skips_solver(
        self, client, spec
    ):
        """Acceptance: warm request == cold request, solver untouched."""
        cold = client.submit_spec(spec)
        client.wait(cold["job_id"])
        cold_payload = client.result(cold["job_id"])
        perf_after_cold = client.metricsz()["perf"]
        assert perf_after_cold["dijkstra_calls"] > 0
        assert perf_after_cold["injections"] > 0
        assert perf_after_cold["cache_misses"] == 1
        assert perf_after_cold["cache_hits"] == 0

        warm = client.submit_spec(spec)
        assert warm["state"] == "done"  # completed at submission time
        assert warm["cached"] is True
        warm_payload = client.result(warm["job_id"])
        assert json.dumps(warm_payload, sort_keys=True) == json.dumps(
            cold_payload, sort_keys=True
        )

        perf_after_warm = client.metricsz()["perf"]
        # The spreading-metric solver did not run again.
        assert (
            perf_after_warm["dijkstra_calls"]
            == perf_after_cold["dijkstra_calls"]
        )
        assert perf_after_warm["injections"] == perf_after_cold["injections"]
        assert perf_after_warm["cache_hits"] == 1

    def test_warm_hit_survives_server_restart(self, tmp_path, spec):
        """The disk tier makes warmth durable across processes."""
        cache_dir = tmp_path / "blobs"
        with ServerThread(
            manager_kwargs={"cache": ResultCache(cache_dir=cache_dir)}
        ) as first:
            client = ServiceClient(first.url)
            cold = client.submit_spec(spec)
            client.wait(cold["job_id"])
            cold_payload = client.result(cold["job_id"])
        with ServerThread(
            manager_kwargs={"cache": ResultCache(cache_dir=cache_dir)}
        ) as second:
            client = ServiceClient(second.url)
            warm = client.submit_spec(spec)
            assert warm["cached"] is True
            warm_payload = client.result(warm["job_id"])
            assert warm_payload == cold_payload
            perf = client.metricsz()["perf"]
            assert perf["dijkstra_calls"] == 0  # this server never solved

    def test_healthz_and_job_listing(self, client, spec):
        health = client.healthz()
        assert health["status"] == "ok"
        assert health["accepting"] is True
        submitted = client.submit_spec(spec)
        client.wait(submitted["job_id"])
        listing = client.jobs()
        assert [j["job_id"] for j in listing["jobs"]] == [
            submitted["job_id"]
        ]
        assert client.healthz()["jobs"]["done"] == 1

    def test_cancel_endpoint(self, netlist, hierarchy, tmp_path):
        release = threading.Event()

        def runner(spec):
            release.wait(5)
            raise RuntimeError("never reached in this test")

        thread = ServerThread(
            manager_kwargs={"max_concurrency": 1, "runner": runner}
        )
        try:
            client = ServiceClient(thread.url)
            blocker = client.submit_spec(
                JobSpec.from_parts(netlist, hierarchy, {"seed": 1})
            )
            queued = client.submit_spec(
                JobSpec.from_parts(netlist, hierarchy, {"seed": 2})
            )
            cancelled = client.cancel(queued["job_id"])
            assert cancelled["state"] == "cancelled"
            with pytest.raises(ServiceClientError) as excinfo:
                client.result(queued["job_id"])
            assert excinfo.value.status == 409
        finally:
            release.set()
            thread.stop(drain=False)

    def test_graceful_shutdown_with_in_flight_job(self, netlist, hierarchy):
        """Acceptance: shutdown completes the running job, cancels queued."""
        release = threading.Event()
        results = {"solved": 0}

        def runner(spec):
            release.wait(5)
            results["solved"] += 1
            return flow_htp(
                spec.build_netlist(),
                spec.build_hierarchy(),
                spec.build_config(),
            )

        thread = ServerThread(
            manager_kwargs={"max_concurrency": 1, "runner": runner}
        )
        client = ServiceClient(thread.url)
        running = client.submit_spec(
            JobSpec.from_parts(netlist, hierarchy, {"iterations": 1, "seed": 1})
        )
        queued = client.submit_spec(
            JobSpec.from_parts(netlist, hierarchy, {"iterations": 1, "seed": 2})
        )
        deadline = time.monotonic() + 5
        while client.status(running["job_id"])["state"] != "running":
            assert time.monotonic() < deadline
            time.sleep(0.01)
        release.set()
        thread.stop(drain=True)  # graceful: drains the in-flight job
        manager = thread.manager
        assert results["solved"] == 1
        states = {
            job.job_id: job.state for job in manager.jobs()
        }
        assert states[running["job_id"]] is JobState.DONE
        assert states[queued["job_id"]] is JobState.CANCELLED


class TestHttpProtocol:
    def test_unknown_job_is_404(self, client):
        with pytest.raises(ServiceClientError) as excinfo:
            client.status("not-a-job")
        assert excinfo.value.status == 404

    def test_unknown_endpoint_is_404(self, client):
        with pytest.raises(ServiceClientError) as excinfo:
            client._request("GET", "/nope")
        assert excinfo.value.status == 404

    def test_wrong_method_is_405(self, client):
        with pytest.raises(ServiceClientError) as excinfo:
            client._request("POST", "/healthz", body={})
        assert excinfo.value.status == 405

    def test_bad_json_body_is_400(self, client, server):
        import http.client

        connection = http.client.HTTPConnection(
            "127.0.0.1", server.port, timeout=10
        )
        try:
            connection.request("POST", "/jobs", body=b"{nope")
            response = connection.getresponse()
            assert response.status == 400
            assert b"JSON" in response.read()
        finally:
            connection.close()

    def test_bad_spec_is_400(self, client):
        with pytest.raises(ServiceClientError) as excinfo:
            client.submit({"netlist": {}, "hierarchy": "wat"})
        assert excinfo.value.status == 400

    def test_result_before_done_is_409(self, client, netlist, hierarchy):
        release = threading.Event()
        thread = ServerThread(
            manager_kwargs={
                "max_concurrency": 1,
                "runner": lambda s: release.wait(5),
            }
        )
        try:
            blocked_client = ServiceClient(thread.url)
            job = blocked_client.submit_spec(
                JobSpec.from_parts(netlist, hierarchy)
            )
            with pytest.raises(ServiceClientError) as excinfo:
                blocked_client.result(job["job_id"])
            assert excinfo.value.status == 409
        finally:
            release.set()
            thread.stop(drain=False)

    def test_submit_after_shutdown_is_503(self, netlist, hierarchy):
        thread = ServerThread()
        client = ServiceClient(thread.url)
        # Refuse new work while still answering: flip the manager's
        # accepting flag the way shutdown does, with the socket open.
        thread.manager._accepting = False
        with pytest.raises(ServiceClientError) as excinfo:
            client.submit_spec(JobSpec.from_parts(netlist, hierarchy))
        assert excinfo.value.status == 503
        thread.stop()

    def test_client_rejects_bad_base_url(self):
        with pytest.raises(ServiceClientError):
            ServiceClient("ftp://example.com")

    def test_connection_refused_reports_status_zero(self):
        client = ServiceClient("http://127.0.0.1:9", timeout=1)
        with pytest.raises(ServiceClientError) as excinfo:
            client.healthz()
        assert excinfo.value.status == 0


class _FlakyServer:
    """A one-shot stand-in server that drops the first N connections.

    Dropped connections are closed right after the request arrives,
    which the stdlib client surfaces as ``RemoteDisconnected`` — the
    exact weather around a real server restart.  Subsequent connections
    get a canned 200 JSON body.
    """

    def __init__(self, drops, body=b'{"ok": true}'):
        import socket

        self.drops = drops
        self.body = body
        self.connections = 0
        self._sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._sock.bind(("127.0.0.1", 0))
        self._sock.listen(8)
        self.port = self._sock.getsockname()[1]
        self._thread = threading.Thread(target=self._serve, daemon=True)
        self._thread.start()

    @property
    def url(self):
        return f"http://127.0.0.1:{self.port}"

    def _serve(self):
        while True:
            try:
                conn, _ = self._sock.accept()
            except OSError:
                return
            self.connections += 1
            try:
                conn.recv(4096)
                if self.connections <= self.drops:
                    conn.close()  # mid-exchange hangup
                    continue
                conn.sendall(
                    b"HTTP/1.1 200 OK\r\n"
                    b"Content-Type: application/json\r\n"
                    + f"Content-Length: {len(self.body)}\r\n\r\n".encode()
                    + self.body
                )
            finally:
                conn.close()

    def stop(self):
        self._sock.close()


class TestClientRetries:
    def test_idempotent_get_retries_through_flaky_server(self):
        from repro.core.faults import FaultTolerance

        flaky = _FlakyServer(drops=2)
        try:
            client = ServiceClient(
                flaky.url,
                timeout=5,
                tolerance=FaultTolerance(task_retries=3, backoff_base=0.01),
            )
            assert client.healthz() == {"ok": True}
            assert flaky.connections == 3  # two drops + one success
        finally:
            flaky.stop()

    def test_retry_budget_exhaustion_raises(self):
        from repro.core.faults import FaultTolerance

        flaky = _FlakyServer(drops=100)
        try:
            client = ServiceClient(
                flaky.url,
                timeout=5,
                tolerance=FaultTolerance(task_retries=2, backoff_base=0.01),
            )
            with pytest.raises(ServiceClientError, match="3 attempts"):
                client.healthz()
            assert flaky.connections == 3
        finally:
            flaky.stop()

    def test_post_never_retries(self, netlist, hierarchy):
        from repro.core.faults import FaultTolerance

        flaky = _FlakyServer(drops=100)
        try:
            client = ServiceClient(
                flaky.url,
                timeout=5,
                tolerance=FaultTolerance(task_retries=3, backoff_base=0.01),
            )
            with pytest.raises(ServiceClientError):
                client.submit_spec(JobSpec.from_parts(netlist, hierarchy))
            assert flaky.connections == 1  # one shot, no second POST
        finally:
            flaky.stop()


class TestAdmissionAndDeadlinesOverHttp:
    def test_full_queue_is_429_with_retry_after(self, netlist, hierarchy):
        release = threading.Event()
        thread = ServerThread(
            manager_kwargs={
                "max_concurrency": 1,
                "max_queue_depth": 1,
                "runner": lambda s: release.wait(10),
            }
        )
        try:
            client = ServiceClient(thread.url)
            # Distinct seeds: distinct content addresses, no cache hits.
            client.submit_spec(
                JobSpec.from_parts(netlist, hierarchy, {"seed": 1})
            )
            time.sleep(0.1)  # let the worker pull the first job
            client.submit_spec(
                JobSpec.from_parts(netlist, hierarchy, {"seed": 2})
            )
            with pytest.raises(ServiceClientError) as excinfo:
                client.submit_spec(
                    JobSpec.from_parts(netlist, hierarchy, {"seed": 3})
                )
            assert excinfo.value.status == 429
            assert excinfo.value.retry_after is not None
            assert excinfo.value.retry_after >= 1.0
            metrics = client.metricsz()
            assert metrics["queue"]["rejections"] == 1
            assert metrics["queue"]["max_depth"] == 1
        finally:
            release.set()
            thread.stop(drain=False)

    def test_expired_deadline_fails_job_over_http(self, netlist, hierarchy):
        thread = ServerThread(manager_kwargs={"max_concurrency": 1})
        try:
            client = ServiceClient(thread.url)
            job = client.submit_spec(
                JobSpec.from_parts(
                    netlist, hierarchy, {"iterations": 1, "max_rounds": 8}
                ),
                deadline=1e-6,
            )
            status = client.wait(job["job_id"], timeout=30)
            assert status["state"] == JobState.FAILED.value
            assert "deadline" in status["error"]
        finally:
            thread.stop(drain=False)

    def test_bad_deadline_is_400(self, client, spec):
        with pytest.raises(ServiceClientError) as excinfo:
            client.submit(dict(spec.to_payload(), deadline="soonish"))
        assert excinfo.value.status == 400

    def test_metricsz_exposes_durability_sections(self, tmp_path, spec):
        from repro.service import Journal

        thread = ServerThread(
            manager_kwargs={
                "journal": Journal(tmp_path / "wal"),
                "checkpoint_root": tmp_path / "ckpt",
            }
        )
        try:
            client = ServiceClient(thread.url)
            client.submit_spec(spec)
            client.wait(client.jobs()["jobs"][0]["job_id"], timeout=60)
            metrics = client.metricsz()
            assert metrics["queue"]["depth"] == 0
            assert metrics["journal"]["appended"] >= 2
            assert metrics["journal"]["bytes"] > 0
            assert "checkpoints" in metrics
            assert metrics["perf"]["journal_records"] >= 2
        finally:
            thread.stop()
