"""The ground-truth tier: golden corpus vs the exact oracles and FLOW.

Every committed instance in ``tests/regressions/optimal/`` carries a
proven optimal cost.  This module asserts, on every run:

* the branch-and-bound reference reproduces the optimum **bit-equally**
  (and the ILP does too, where pulp is installed);
* the tree-metric DP agrees on every tree-structured instance;
* FLOW under the committed deterministic configuration stays feasible,
  never beats the proven optimum, and keeps its gap within the
  committed ``gap_bound``.

A drift in any engine's cost accounting, the exact oracles, or FLOW's
construction shows up here as a ground-truth failure rather than a
self-consistency one.
"""

import pytest

from repro.analysis.exact import (
    HAS_PULP,
    iter_corpus,
    solve_exact,
)
from repro.core.flow_htp import FlowHTPConfig, flow_htp
from repro.testing import assert_cost_optimal, assert_gap_bounded

pytestmark = pytest.mark.optimality

CORPUS = iter_corpus()
IDS = [instance.name for instance in CORPUS]
TREE = [instance for instance in CORPUS if instance.tree_structured]
TREE_IDS = [instance.name for instance in TREE]


def test_corpus_is_present_and_covers_both_shapes():
    assert len(CORPUS) >= 6, "golden corpus went missing or shrank"
    assert any(i.tree_structured for i in CORPUS)
    assert any(not i.tree_structured for i in CORPUS)


@pytest.mark.parametrize("instance", CORPUS, ids=IDS)
def test_branch_bound_reproduces_committed_optimum(instance):
    result = solve_exact(
        instance.hypergraph, instance.spec, method="bnb", time_limit=60.0
    )
    assert result.status == "optimal"
    # Bit-equal: both sides are total_cost() over integer-valued data.
    assert result.cost == instance.optimal_cost
    assert_cost_optimal(
        instance.hypergraph,
        result.partition,
        instance.spec,
        instance.optimal_cost,
    )


@pytest.mark.parametrize("instance", TREE, ids=TREE_IDS)
def test_tree_dp_reproduces_committed_optimum(instance):
    result = solve_exact(
        instance.hypergraph, instance.spec, method="dp", time_limit=60.0
    )
    assert result.status == "optimal"
    assert result.cost == instance.optimal_cost
    assert_cost_optimal(
        instance.hypergraph,
        result.partition,
        instance.spec,
        instance.optimal_cost,
    )


@pytest.mark.skipif(not HAS_PULP, reason="pulp not installed")
@pytest.mark.parametrize("instance", CORPUS, ids=IDS)
def test_ilp_reproduces_committed_optimum(instance):
    result = solve_exact(
        instance.hypergraph, instance.spec, method="ilp", time_limit=60.0
    )
    assert result.status == "optimal"
    assert result.cost == instance.optimal_cost


@pytest.mark.parametrize("instance", CORPUS, ids=IDS)
def test_flow_gap_stays_within_committed_bound(instance):
    config = FlowHTPConfig(
        iterations=int(instance.flow["iterations"]),
        seed=int(instance.flow["seed"]),
    )
    result = flow_htp(instance.hypergraph, instance.spec, config)
    ratio = assert_gap_bounded(
        instance.hypergraph,
        result.partition,
        instance.spec,
        instance.optimal_cost,
        max_ratio=float(instance.flow["gap_bound"]),
    )
    assert ratio >= 1.0 - 1e-9
