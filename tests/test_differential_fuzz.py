"""Differential fuzzing: every engine must produce bit-identical metrics.

Random small hypergraphs run through the ``scipy-serial``, ``scipy``,
``native`` (when the compiled kernel is built) and ``parallel``
(workers 1, 2, 4) spreading-metric engines with the same seed; any
disagreement is a determinism bug.  On mismatch the instance is shrunk
(dropping nets while the mismatch reproduces) and written to
``tests/regressions/`` as a JSON counterexample, which the
corpus-replay test below then guards forever.

A second cross-check runs ``multilevel-flow`` against flat FLOW on
small Rent instances: both partitions must be feasible and both
engines' reported costs must equal the canonical ``total_cost``
recompute of their own partition.  (The two costs may legitimately
differ from each other — different algorithms — but neither may
mis-report or violate a constraint.)  Counterexamples persist as
``diff_ml_seed*.json`` and replay through the same corpus test,
dispatched by their ``engines`` field.
"""

from __future__ import annotations

import json
import random
from pathlib import Path

import numpy as np
import pytest

from repro.core import _kernel as native_kernel
from repro.core.parallel import ParallelConfig
from repro.core.spreading_metric import (
    SpreadingMetricConfig,
    compute_spreading_metric,
)
from repro.htp.hierarchy import binary_hierarchy
from repro.hypergraph import Hypergraph
from repro.hypergraph.expansion import to_graph

REGRESSION_DIR = Path(__file__).parent / "regressions"

SERIAL_ENGINES = ("scipy-serial", "scipy")
PARALLEL_WORKERS = (1, 2, 4)


def _random_netlist(seed: int) -> Hypergraph:
    """A connected random netlist with 12..24 nodes."""
    rng = random.Random(seed)
    n = rng.randrange(12, 25)
    nets = [(i, i + 1) for i in range(n - 1)]  # spanning chain
    for _ in range(rng.randrange(4, 14)):
        size = rng.randrange(2, 5)
        pins = rng.sample(range(n), size)
        nets.append(tuple(pins))
    return Hypergraph(n, nets=nets)


def _metric_lengths(netlist: Hypergraph, height: int, seed: int,
                    engine: str, workers: int = 1) -> np.ndarray:
    spec = binary_hierarchy(
        max(netlist.total_size(), 4), height=height, slack=0.4
    )
    graph = to_graph(netlist, rng=random.Random(seed))
    parallel = None
    if engine == "parallel":
        # autoserial=False keeps real pool coverage in the cross-product
        # even on a 1-core box.
        parallel = ParallelConfig(
            workers=workers, min_sources_per_task=2, autoserial=False
        )
    config = SpreadingMetricConfig(
        delta=0.1,
        max_rounds=20,
        engine=engine,
        seed=seed,
        parallel=parallel,
    )
    result = compute_spreading_metric(
        graph, spec, config, rng=random.Random(seed)
    )
    return np.asarray(result.lengths)


def _first_mismatch(netlist: Hypergraph, height: int, seed: int):
    """(engine_pair, message) of the first engine disagreement, or None."""
    runs = [("scipy-serial", 1)]
    runs += [("scipy", 1)]
    if native_kernel.available():
        # The compiled kernel joins the cross-product wherever it is
        # built; test_native_engine_present_in_cross_product (skip-marked)
        # documents when it is absent.
        runs += [("native", 1)]
    runs += [("parallel", w) for w in PARALLEL_WORKERS]
    reference = None
    reference_name = None
    for engine, workers in runs:
        lengths = _metric_lengths(netlist, height, seed, engine, workers)
        name = engine if engine != "parallel" else f"parallel/w{workers}"
        if reference is None:
            reference, reference_name = lengths, name
            continue
        if not np.array_equal(reference, lengths):
            bad = int(np.flatnonzero(reference != lengths)[0])
            return (
                (reference_name, name),
                f"lengths differ at edge {bad}: "
                f"{reference[bad]!r} vs {lengths[bad]!r}",
            )
    return None


def _shrink(
    netlist: Hypergraph, height: int, seed: int, mismatch_fn=None
) -> Hypergraph:
    """Greedily drop nets while the engines still disagree.

    ``mismatch_fn`` defaults to :func:`_first_mismatch` (resolved at
    call time so the self-test's monkeypatch applies); the multilevel
    cross-check passes :func:`_ml_mismatch`.
    """
    nets = [tuple(pins) for pins in netlist.nets()]
    shrunk = netlist
    i = 0
    while i < len(nets):
        candidate_nets = nets[:i] + nets[i + 1:]
        if not candidate_nets:
            break
        candidate = Hypergraph(netlist.num_nodes, nets=candidate_nets)
        check = mismatch_fn or _first_mismatch
        try:
            still_bad = check(candidate, height, seed) is not None
        except Exception:
            still_bad = False  # shrink must preserve *this* failure mode
        if still_bad:
            nets = candidate_nets
            shrunk = candidate
        else:
            i += 1
    return shrunk


def _write_counterexample(
    netlist, height, seed, mismatch, prefix: str = "diff"
) -> Path:
    REGRESSION_DIR.mkdir(exist_ok=True)
    engines, message = mismatch
    payload = {
        "num_nodes": netlist.num_nodes,
        "nets": [list(pins) for pins in netlist.nets()],
        "height": height,
        "seed": seed,
        "engines": list(engines),
        "mismatch": message,
    }
    path = REGRESSION_DIR / f"{prefix}_seed{seed}.json"
    path.write_text(json.dumps(payload, indent=2) + "\n")
    return path


# ----------------------------------------------------------------------
# multilevel-flow vs flat FLOW
# ----------------------------------------------------------------------
def _ml_instance(seed: int) -> Hypergraph:
    """A small Rent netlist sized for a real (multi-level) V-cycle."""
    from repro.hypergraph.generators import rent_hypergraph

    return rent_hypergraph(120 + 30 * (seed % 3), seed=seed, leaf_size=16)


def _ml_mismatch(netlist: Hypergraph, height: int, seed: int):
    """Cross-check multilevel-flow against flat FLOW on one instance.

    Both must produce feasible partitions, and each engine's reported
    cost must equal the canonical ``total_cost`` recompute of its own
    partition.  Returns ``(engine_pair, message)`` or None.
    """
    from repro.core.flow_htp import FlowHTPConfig, flow_htp
    from repro.htp.cost import total_cost
    from repro.htp.validate import partition_violations
    from repro.partitioning.multilevel_flow import (
        MultilevelFlowConfig,
        multilevel_flow_htp,
    )

    spec = binary_hierarchy(netlist.total_size(), height=height)
    flat = flow_htp(
        netlist, spec, FlowHTPConfig(iterations=1, seed=seed)
    )
    ml = multilevel_flow_htp(netlist, spec, MultilevelFlowConfig(seed=seed))
    pair = ("flat-flow", "multilevel-flow")
    for name, result in (("flat-flow", flat), ("multilevel-flow", ml)):
        problems = partition_violations(netlist, result.partition, spec)
        if problems:
            return pair, f"{name} partition infeasible: {problems[0]}"
        recomputed = total_cost(netlist, result.partition, spec)
        if abs(result.cost - recomputed) > 1e-6 * max(1.0, abs(recomputed)):
            return (
                pair,
                f"{name} reports cost {result.cost!r} but its partition "
                f"recomputes to {recomputed!r}",
            )
    return None


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_multilevel_flow_consistent_with_flat_flow(seed):
    """multilevel-flow stays feasible and cost-honest vs flat FLOW."""
    netlist = _ml_instance(seed)
    height = 3
    mismatch = _ml_mismatch(netlist, height, seed)
    if mismatch is not None:
        shrunk = _shrink(netlist, height, seed, mismatch_fn=_ml_mismatch)
        final = _ml_mismatch(shrunk, height, seed) or mismatch
        path = _write_counterexample(
            shrunk, height, seed, final, prefix="diff_ml"
        )
        pytest.fail(
            f"multilevel cross-check failed: {final[1]} — shrunk "
            f"reproducer written to {path}"
        )


@pytest.mark.parametrize("seed", [0, 1, 2, 3])
def test_engines_bit_identical_on_random_instances(seed):
    """scipy-serial == scipy == parallel(1,2,4) on random netlists."""
    netlist = _random_netlist(seed)
    height = 2
    mismatch = _first_mismatch(netlist, height, seed)
    if mismatch is not None:
        shrunk = _shrink(netlist, height, seed)
        final = _first_mismatch(shrunk, height, seed) or mismatch
        path = _write_counterexample(shrunk, height, seed, final)
        pytest.fail(
            f"engine mismatch ({final[0][0]} vs {final[0][1]}): "
            f"{final[1]} — shrunk reproducer written to {path}"
        )


@pytest.mark.skipif(
    not native_kernel.available(),
    reason="native kernel extension not built in this environment",
)
@pytest.mark.parametrize("seed", [0, 1, 2, 3])
def test_native_engine_present_in_cross_product(seed):
    """With the kernel built, ``native`` joins the fuzz cross-product —
    checked directly here so a silently-skipped engine can't hide."""
    netlist = _random_netlist(seed)
    reference = _metric_lengths(netlist, 2, seed, "scipy-serial")
    native = _metric_lengths(netlist, 2, seed, "native")
    assert np.array_equal(reference, native)


def test_shrinker_and_writer_machinery(monkeypatch, tmp_path):
    """Self-test of the harness: shrinking and JSON writing work.

    Stubs the mismatch detector to flag any instance containing net
    (0, 1); the shrinker must reduce the netlist to essentially that
    net and the writer must produce a loadable counterexample.
    """
    import tests.test_differential_fuzz as fuzz

    def fake_mismatch(netlist, height, seed):
        if any(tuple(sorted(p)) == (0, 1) for p in netlist.nets()):
            return (("scipy", "parallel/w2"), "stub mismatch")
        return None

    monkeypatch.setattr(fuzz, "_first_mismatch", fake_mismatch)
    monkeypatch.setattr(fuzz, "REGRESSION_DIR", tmp_path)

    netlist = Hypergraph(6, nets=[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)])
    shrunk = fuzz._shrink(netlist, height=2, seed=9)
    assert shrunk.num_nets == 1
    assert tuple(sorted(shrunk.net(0))) == (0, 1)

    path = fuzz._write_counterexample(
        shrunk, 2, 9, (("scipy", "parallel/w2"), "stub mismatch")
    )
    payload = json.loads(path.read_text())
    assert payload["nets"] == [[0, 1]]
    assert payload["seed"] == 9
    assert payload["engines"] == ["scipy", "parallel/w2"]


def _corpus_files():
    if not REGRESSION_DIR.is_dir():
        return []
    return sorted(REGRESSION_DIR.glob("*.json"))


@pytest.mark.parametrize(
    "path",
    _corpus_files() or [None],
    ids=lambda p: p.name if p else "empty-corpus",
)
def test_regression_corpus_still_identical(path):
    """Replay every committed counterexample; none may regress.

    Dispatch by the recorded ``engines``: multilevel counterexamples
    replay through the multilevel cross-check, metric-engine ones
    through the bit-identity cross-product.
    """
    if path is None:
        pytest.skip("no regression corpus — determinism holding")
    payload = json.loads(path.read_text())
    netlist = Hypergraph(
        payload["num_nodes"],
        nets=[tuple(pins) for pins in payload["nets"]],
    )
    if "multilevel-flow" in payload["engines"]:
        mismatch = _ml_mismatch(
            netlist, payload["height"], payload["seed"]
        )
    else:
        mismatch = _first_mismatch(
            netlist, payload["height"], payload["seed"]
        )
    assert mismatch is None, (
        f"regression {path.name} reproduces again: {mismatch[1]}"
    )
