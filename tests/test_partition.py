"""Unit tests for the PartitionTree structure."""

import pytest

from repro.errors import PartitionError
from repro.htp.partition import PartitionTree


def two_level():
    """4 nodes in 2 leaves under a single root."""
    return PartitionTree.from_nested([[0, 1], [2, 3]], num_nodes=4)


class TestConstruction:
    def test_from_nested_two_levels(self):
        tree = two_level()
        assert tree.num_levels == 1
        assert len(tree.leaves()) == 2
        assert tree.leaf_of(0) == tree.leaf_of(1)
        assert tree.leaf_of(0) != tree.leaf_of(2)

    def test_from_nested_three_levels(self, fig2_optimal_partition):
        tree = fig2_optimal_partition
        assert tree.num_levels == 2
        assert len(tree.leaves()) == 4
        assert len(tree.vertices_at_level(1)) == 2

    def test_nested_depth_mismatch_rejected(self):
        with pytest.raises(PartitionError):
            PartitionTree.from_nested([[0, 1], [[2], [3]]], num_nodes=4)

    def test_nested_mixed_level_rejected(self):
        with pytest.raises(PartitionError):
            PartitionTree.from_nested([0, [1, 2]], num_nodes=3)

    def test_unassigned_node_rejected(self):
        tree = PartitionTree(num_nodes=2, num_levels=1)
        leaf = tree.add_vertex(level=0, parent=tree.root)
        tree.assign(0, leaf)
        with pytest.raises(PartitionError):
            tree.freeze()

    def test_assign_to_internal_vertex_rejected(self):
        tree = PartitionTree(num_nodes=2, num_levels=2)
        middle = tree.add_vertex(level=1, parent=tree.root)
        with pytest.raises(PartitionError):
            tree.assign(0, middle)

    def test_child_level_must_be_parent_minus_one(self):
        tree = PartitionTree(num_nodes=2, num_levels=2)
        with pytest.raises(PartitionError):
            tree.add_vertex(level=0, parent=tree.root)

    def test_second_root_rejected(self):
        tree = PartitionTree(num_nodes=2, num_levels=1)
        with pytest.raises(PartitionError):
            tree.add_vertex(level=1, parent=-1)

    def test_add_leaf_chain(self):
        tree = PartitionTree(num_nodes=1, num_levels=3)
        leaf = tree.add_leaf_chain(tree.root)
        assert tree.level(leaf) == 0
        tree.assign(0, leaf)
        tree.freeze()
        chain = tree.ancestor_chain(leaf)
        assert [tree.level(v) for v in chain] == [0, 1, 2, 3]


class TestFromLeafBlocks:
    def test_flat(self):
        tree = PartitionTree.from_leaf_blocks(
            [[0, 1], [2], [3, 4]], num_nodes=5
        )
        assert len(tree.leaves()) == 3
        assert tree.num_levels == 1

    def test_with_grouping(self):
        # 4 blocks -> 2 pairs -> root
        tree = PartitionTree.from_leaf_blocks(
            [[0], [1], [2], [3]],
            num_nodes=4,
            grouping=[[[0, 1], [2, 3]], [[0, 1]]],
        )
        assert tree.num_levels == 2
        assert tree.leaf_of(0) != tree.leaf_of(1)
        assert tree.block_at_level(0, 1) == tree.block_at_level(1, 1)
        assert tree.block_at_level(0, 1) != tree.block_at_level(2, 1)

    def test_grouping_must_cover_indices(self):
        with pytest.raises(PartitionError):
            PartitionTree.from_leaf_blocks(
                [[0], [1]],
                num_nodes=2,
                grouping=[[[0, 0]], [[0]]],
            )

    def test_grouping_root_must_be_single_group(self):
        with pytest.raises(PartitionError):
            PartitionTree.from_leaf_blocks(
                [[0], [1]],
                num_nodes=2,
                grouping=[[[0], [1]], [[0], [1]]],
            )


class TestQueries:
    def test_block_at_level(self, fig2_optimal_partition):
        tree = fig2_optimal_partition
        assert tree.block_at_level(0, 2) == tree.root
        assert tree.block_at_level(0, 1) == tree.block_at_level(5, 1)
        assert tree.block_at_level(0, 1) != tree.block_at_level(9, 1)

    def test_members(self, fig2_optimal_partition):
        tree = fig2_optimal_partition
        level1 = tree.vertices_at_level(1)
        members = tree.members(level1[0])
        assert members == list(range(8))
        assert tree.members(tree.root) == list(range(16))

    def test_leaf_blocks(self, fig2_optimal_partition):
        blocks = fig2_optimal_partition.leaf_blocks()
        assert sorted(map(tuple, blocks.values())) == [
            (0, 1, 2, 3),
            (4, 5, 6, 7),
            (8, 9, 10, 11),
            (12, 13, 14, 15),
        ]

    def test_block_sizes(self, fig2_optimal_partition):
        sizes = fig2_optimal_partition.block_sizes([1.0] * 16)
        assert sizes[fig2_optimal_partition.root] == 16.0
        for leaf in fig2_optimal_partition.leaves():
            assert sizes[leaf] == 4.0

    def test_render_contains_levels(self, fig2_optimal_partition):
        text = fig2_optimal_partition.render()
        assert "level 2" in text and "level 0" in text


class TestMoveAndCopy:
    def test_move_changes_leaf(self, fig2_optimal_partition):
        tree = fig2_optimal_partition
        target = tree.leaf_of(15)
        previous = tree.move(0, target)
        assert tree.leaf_of(0) == target
        assert previous != target

    def test_move_to_internal_rejected(self, fig2_optimal_partition):
        tree = fig2_optimal_partition
        with pytest.raises(PartitionError):
            tree.move(0, tree.root)

    def test_copy_is_independent(self, fig2_optimal_partition):
        tree = fig2_optimal_partition
        clone = tree.copy()
        clone.move(0, clone.leaf_of(15))
        assert tree.leaf_of(0) != tree.leaf_of(15)
        assert clone.leaf_of(0) == clone.leaf_of(15)
