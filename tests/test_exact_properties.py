"""Hypothesis properties tying the exact oracles to each other and to FLOW.

The acceptance property of the optimality harness: on every random
tree-structured instance the tree-metric DP and the general-purpose
exact solver (the ILP where pulp is installed, the branch-and-bound
otherwise — both search the same template space) report **bit-equal**
optimal costs; and FLOW is always feasible and never beats a proven
optimum, with the achieved gap recorded.

Instances use integer node sizes, net capacities and level weights, so
every cost is an exact float integer and ``==`` is meaningful.
``derandomize=True`` keeps the examples identical on every machine.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis.exact import (
    HAS_PULP,
    is_tree_instance,
    solve_exact,
)
from repro.core.flow_htp import FlowHTPConfig, flow_htp
from repro.htp.hierarchy import HierarchySpec
from repro.hypergraph.hypergraph import Hypergraph
from repro.testing import assert_cost_optimal, assert_gap_bounded

PROPERTY_SETTINGS = dict(
    max_examples=25,
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
)

#: The general exact reference the DP must agree with bit-equally.
REFERENCE_METHOD = "ilp" if HAS_PULP else "bnb"

SPEC = HierarchySpec(capacities=(4, 8, 16), branching=(2, 2), weights=(1, 2))


@st.composite
def tree_instances(draw):
    """Random forests: 4..12 unit-size nodes, integer net capacities."""
    n = draw(st.integers(min_value=4, max_value=12))
    # each node >= 1 attaches to a random earlier node; dropping a few
    # edges turns the tree into a forest now and then
    parents = [
        draw(st.integers(min_value=0, max_value=i - 1))
        for i in range(1, n)
    ]
    keep = draw(
        st.lists(
            st.booleans(), min_size=n - 1, max_size=n - 1
        )
    )
    nets = [
        (parent, i + 1)
        for i, (parent, kept) in enumerate(zip(parents, keep))
        if kept or i % 3 == 0  # keep enough edges to stay interesting
    ]
    if not nets:
        nets = [(0, 1)]
    caps = [
        draw(st.integers(min_value=1, max_value=3)) for _ in nets
    ]
    return Hypergraph(num_nodes=n, nets=nets, net_capacities=caps)


@st.composite
def small_instances(draw):
    """Random small hypergraphs (possibly multi-pin, possibly cyclic)."""
    n = draw(st.integers(min_value=4, max_value=10))
    num_nets = draw(st.integers(min_value=2, max_value=2 * n))
    nets = []
    for _ in range(num_nets):
        size = draw(st.integers(min_value=2, max_value=3))
        pins = draw(
            st.lists(
                st.integers(min_value=0, max_value=n - 1),
                min_size=size,
                max_size=size,
                unique=True,
            )
        )
        nets.append(tuple(pins))
    # spanning chain keeps the instance connected
    nets.extend((i, i + 1) for i in range(n - 1))
    caps = [draw(st.integers(min_value=1, max_value=3)) for _ in nets]
    return Hypergraph(num_nodes=n, nets=nets, net_capacities=caps)


@settings(**PROPERTY_SETTINGS)
@given(instance=tree_instances())
def test_dp_agrees_bit_equal_with_reference(instance):
    assert is_tree_instance(instance)
    dp = solve_exact(instance, SPEC, method="dp", time_limit=30.0)
    ref = solve_exact(
        instance, SPEC, method=REFERENCE_METHOD, time_limit=30.0
    )
    if dp.status == "optimal" and ref.status == "optimal":
        assert dp.cost == ref.cost, (
            f"DP={dp.cost} vs {ref.solver}={ref.cost}"
        )
        # each oracle's partition achieves the other's optimum
        assert_cost_optimal(instance, dp.partition, SPEC, ref.cost)
        assert_cost_optimal(instance, ref.partition, SPEC, dp.cost)


@settings(**PROPERTY_SETTINGS)
@given(instance=small_instances(), seed=st.integers(0, 3))
def test_flow_never_beats_proven_optimum(instance, seed):
    exact = solve_exact(
        instance, SPEC, method=REFERENCE_METHOD, time_limit=30.0
    )
    if exact.status != "optimal":
        return  # no ground truth inside the box; nothing to assert
    result = flow_htp(
        instance, SPEC, FlowHTPConfig(iterations=1, seed=seed)
    )
    # feasible, >= optimal, and the gap is finite and recordable
    ratio = assert_gap_bounded(
        instance,
        result.partition,
        SPEC,
        exact.cost,
        max_ratio=float("inf"),
    )
    assert ratio >= 1.0 - 1e-9
    assert exact.gap(result.cost) == pytest.approx(ratio)


@settings(**PROPERTY_SETTINGS)
@given(instance=tree_instances())
def test_exact_refine_config_never_worsens_flow(instance):
    base = flow_htp(instance, SPEC, FlowHTPConfig(iterations=1, seed=0))
    refined = flow_htp(
        instance,
        SPEC,
        FlowHTPConfig(iterations=1, seed=0, exact_refine=True),
    )
    assert refined.cost <= base.cost
    # tree instances refine to the proven optimum
    exact = solve_exact(instance, SPEC, method="dp", time_limit=30.0)
    if exact.status == "optimal":
        assert refined.cost == exact.cost
