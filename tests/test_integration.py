"""Cross-module integration tests: full pipelines on real-shaped inputs."""

import random

import pytest

from repro import (
    FlowHTPConfig,
    SpreadingMetricConfig,
    binary_hierarchy,
    check_partition,
    flow_htp,
    gfm_partition,
    htp_fm_improve,
    iscas85_surrogate,
    rfm_partition,
    total_cost,
)
from repro.hypergraph.io import read_hgr, write_hgr


@pytest.fixture(scope="module")
def small_surrogate():
    """c1355 at 25% scale: big enough to be interesting, fast enough."""
    return iscas85_surrogate("c1355", scale=0.25)


@pytest.fixture(scope="module")
def spec(small_surrogate):
    return binary_hierarchy(small_surrogate.total_size(), height=3)


class TestFullPipelines:
    def test_flow_pipeline(self, small_surrogate, spec):
        result = flow_htp(
            small_surrogate,
            spec,
            FlowHTPConfig(
                iterations=2,
                constructions_per_metric=4,
                seed=0,
                metric=SpreadingMetricConfig(alpha=0.5, delta=0.05),
            ),
        )
        check_partition(small_surrogate, result.partition, spec)
        improved = htp_fm_improve(small_surrogate, result.partition, spec)
        check_partition(small_surrogate, improved.partition, spec)
        assert improved.final_cost <= result.cost + 1e-9

    def test_all_three_algorithms_comparable(self, small_surrogate, spec):
        flow_cost = flow_htp(
            small_surrogate,
            spec,
            FlowHTPConfig(iterations=1, seed=0),
        ).cost
        gfm_cost = total_cost(
            small_surrogate,
            gfm_partition(small_surrogate, spec, rng=random.Random(0)),
            spec,
        )
        rfm_cost = total_cost(
            small_surrogate,
            rfm_partition(small_surrogate, spec, rng=random.Random(0)),
            spec,
        )
        # all three must land in the same order of magnitude
        costs = sorted([flow_cost, gfm_cost, rfm_cost])
        assert costs[0] > 0
        assert costs[2] < 4 * costs[0]

    def test_io_round_trip_preserves_costs(
        self, small_surrogate, spec, tmp_path
    ):
        path = tmp_path / "circuit.hgr"
        write_hgr(small_surrogate, path)
        reloaded = read_hgr(path)
        tree = rfm_partition(reloaded, spec, rng=random.Random(1))
        cost_reloaded = total_cost(reloaded, tree, spec)
        cost_original = total_cost(small_surrogate, tree, spec)
        assert cost_reloaded == pytest.approx(cost_original)

    def test_weighted_levels_change_optimal_structure(self, small_surrogate):
        """Higher top-level weight pushes cost into lower levels."""
        flat = binary_hierarchy(
            small_surrogate.total_size(), height=3, weights=(1, 1, 1)
        )
        steep = binary_hierarchy(
            small_surrogate.total_size(), height=3, weights=(1, 1, 20)
        )
        config = FlowHTPConfig(iterations=1, seed=3)
        flat_result = flow_htp(small_surrogate, flat, config)
        steep_result = flow_htp(small_surrogate, steep, config)
        from repro.htp.cost import net_span

        def top_cuts(partition):
            return sum(
                1
                for e in range(small_surrogate.num_nets)
                if net_span(small_surrogate, partition, e, 2) >= 2
            )

        # with a 20x top weight, the top cut should not grow
        assert top_cuts(steep_result.partition) <= top_cuts(
            flat_result.partition
        ) + 2

    def test_nonunit_sizes_pipeline(self):
        """Non-unit node sizes flow through the whole pipeline."""
        from repro.hypergraph.generators import planted_hierarchy_hypergraph
        from repro.hypergraph import Hypergraph

        base = planted_hierarchy_hypergraph(96, height=2, seed=5)
        rng = random.Random(5)
        sizes = [rng.choice([1.0, 1.5, 2.0]) for _ in range(96)]
        netlist = Hypergraph(
            96, nets=base.nets(), node_sizes=sizes, name="sized"
        )
        spec = binary_hierarchy(netlist.total_size(), height=2, slack=0.25)
        result = flow_htp(
            netlist, spec, FlowHTPConfig(iterations=1, seed=0)
        )
        check_partition(netlist, result.partition, spec)
