"""Unit tests for the content-addressed result cache."""

import json

import pytest

from repro.core.perf import PerfCounters
from repro.errors import ServiceError
from repro.service.cache import ResultCache


def key(n: int) -> str:
    """A distinct well-formed (64-hex) cache key."""
    return format(n, "x").rjust(64, "0")


def payload(n: int) -> dict:
    return {"spec_hash": key(n), "result": {"cost": float(n)}}


class TestMemoryTier:
    def test_get_miss_then_hit(self):
        cache = ResultCache(capacity=4)
        assert cache.get(key(1)) is None
        cache.put(key(1), payload(1))
        assert cache.get(key(1)) == payload(1)
        assert cache.counters.cache_misses == 1
        assert cache.counters.cache_hits == 1

    def test_lru_eviction_order(self):
        cache = ResultCache(capacity=2)
        cache.put(key(1), payload(1))
        cache.put(key(2), payload(2))
        cache.get(key(1))  # 1 is now most recently used
        cache.put(key(3), payload(3))  # evicts 2
        assert cache.get(key(2)) is None
        assert cache.get(key(1)) is not None
        assert cache.get(key(3)) is not None
        assert cache.counters.cache_evictions == 1

    def test_reinsert_moves_to_back(self):
        cache = ResultCache(capacity=2)
        cache.put(key(1), payload(1))
        cache.put(key(2), payload(2))
        cache.put(key(1), payload(1))  # refresh 1
        cache.put(key(3), payload(3))  # evicts 2, not 1
        assert key(1) in cache
        assert cache.get(key(2)) is None

    def test_capacity_one(self):
        cache = ResultCache(capacity=1)
        cache.put(key(1), payload(1))
        cache.put(key(2), payload(2))
        assert len(cache) == 1
        assert cache.counters.cache_evictions == 1

    def test_rejects_bad_capacity(self):
        with pytest.raises(ServiceError):
            ResultCache(capacity=0)

    @pytest.mark.parametrize(
        "bad", ["short", "Z" * 64, "../../../etc/passwd", 123, "A" * 64]
    )
    def test_rejects_malformed_keys(self, bad):
        cache = ResultCache()
        with pytest.raises(ServiceError, match="hex"):
            cache.get(bad)

    def test_rejects_mismatched_spec_hash(self):
        cache = ResultCache()
        with pytest.raises(ServiceError, match="content addressing"):
            cache.put(key(1), payload(2))


class TestDiskTier:
    def test_round_trip_through_disk(self, tmp_path):
        first = ResultCache(capacity=4, cache_dir=tmp_path / "cache")
        first.put(key(7), payload(7))
        # A fresh cache over the same directory: memory is cold, disk hits.
        second = ResultCache(capacity=4, cache_dir=tmp_path / "cache")
        got = second.get(key(7))
        assert got == payload(7)
        assert second.counters.cache_hits == 1
        assert second.stats()["disk_hits"] == 1
        # The blob is a CRC-enveloped JSON document named by its key.
        blob = tmp_path / "cache" / f"{key(7)}.json"
        doc = json.loads(blob.read_text())
        assert doc["payload"] == payload(7)
        assert "crc32" in doc

    def test_memory_eviction_keeps_disk_blob(self, tmp_path):
        cache = ResultCache(capacity=1, cache_dir=tmp_path / "cache")
        cache.put(key(1), payload(1))
        cache.put(key(2), payload(2))  # evicts 1 from memory only
        assert cache.counters.cache_evictions == 1
        assert cache.get(key(1)) == payload(1)  # served from disk
        assert cache.stats()["disk_hits"] == 1

    def test_corrupt_blob_is_quarantined_miss(self, tmp_path):
        cache_dir = tmp_path / "cache"
        cache_dir.mkdir()
        (cache_dir / f"{key(3)}.json").write_text("{not json")
        cache = ResultCache(cache_dir=cache_dir)
        assert cache.get(key(3)) is None
        assert cache.counters.cache_corrupt == 1
        assert cache.counters.cache_misses == 1
        assert not (cache_dir / f"{key(3)}.json").exists()
        assert (cache_dir / f"{key(3)}.corrupt").exists()
        # Second lookup is a clean miss, not a second quarantine.
        assert cache.get(key(3)) is None
        assert cache.counters.cache_corrupt == 1

    def test_truncated_blob_is_quarantined_miss(self, tmp_path):
        cache = ResultCache(cache_dir=tmp_path / "cache")
        cache.put(key(6), payload(6))
        cache = ResultCache(cache_dir=tmp_path / "cache")  # cold memory
        blob = tmp_path / "cache" / f"{key(6)}.json"
        blob.write_text(blob.read_text()[:-7])  # hand-truncate
        assert cache.get(key(6)) is None
        assert cache.counters.cache_corrupt == 1
        assert blob.with_suffix(".corrupt").exists()
        # A fresh put repairs the entry and serves again.
        cache.put(key(6), payload(6))
        assert cache.get(key(6)) == payload(6)

    def test_blob_hash_mismatch_is_quarantined_miss(self, tmp_path):
        cache_dir = tmp_path / "cache"
        cache_dir.mkdir()
        (cache_dir / f"{key(4)}.json").write_text(json.dumps(payload(5)))
        cache = ResultCache(cache_dir=cache_dir)
        assert cache.get(key(4)) is None
        assert cache.counters.cache_corrupt == 1
        assert (cache_dir / f"{key(4)}.corrupt").exists()

    def test_legacy_envelope_less_blob_still_loads(self, tmp_path):
        cache_dir = tmp_path / "cache"
        cache_dir.mkdir()
        (cache_dir / f"{key(7)}.json").write_text(json.dumps(payload(7)))
        cache = ResultCache(cache_dir=cache_dir)
        assert cache.get(key(7)) == payload(7)
        assert cache.counters.cache_corrupt == 0

    def test_no_tmp_files_left_behind(self, tmp_path):
        cache = ResultCache(cache_dir=tmp_path / "cache")
        cache.put(key(1), payload(1))
        leftovers = list((tmp_path / "cache").glob("*.tmp"))
        assert leftovers == []


class TestCounters:
    def test_shared_counters_instance(self):
        counters = PerfCounters()
        cache = ResultCache(counters=counters)
        cache.get(key(1))
        cache.put(key(1), payload(1))
        cache.get(key(1))
        assert counters.cache_misses == 1
        assert counters.cache_hits == 1

    def test_stats_shape(self, tmp_path):
        cache = ResultCache(capacity=3, cache_dir=tmp_path / "c")
        cache.put(key(1), payload(1))
        cache.get(key(1))
        stats = cache.stats()
        assert stats["entries"] == 1
        assert stats["capacity"] == 3
        assert stats["hits"] == 1
        assert stats["memory_hits"] == 1
        assert stats["misses"] == 0
        assert stats["disk"].endswith("c")
