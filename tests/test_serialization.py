"""Round-trip tests for the JSON forms of results and partitions.

The service ships :class:`FlowHTPResult` over the wire and through the
content-addressed cache as JSON, so ``to_dict``/``from_dict`` must be a
faithful round trip — including through an actual ``json.dumps`` /
``json.loads`` cycle, which is what the disk blobs and HTTP bodies see.
"""

import json

import numpy as np
import pytest

from repro.core.flow_htp import FlowHTPConfig, FlowHTPResult, flow_htp
from repro.core.perf import PerfCounters
from repro.errors import PartitionError
from repro.htp.cost import total_cost
from repro.htp.hierarchy import binary_hierarchy
from repro.htp.partition import PartitionTree
from repro.hypergraph.generators import planted_hierarchy_hypergraph


@pytest.fixture(scope="module")
def solved():
    """A solved instance shared by the result round-trip tests."""
    netlist = planted_hierarchy_hypergraph(48, height=2, seed=2)
    hierarchy = binary_hierarchy(netlist.total_size(), height=2)
    config = FlowHTPConfig(iterations=1, seed=2)
    return netlist, hierarchy, flow_htp(netlist, hierarchy, config)


class TestPartitionTreeRoundTrip:
    def test_round_trip_preserves_assignment(self, solved):
        _netlist, _hierarchy, result = solved
        tree = result.partition
        clone = PartitionTree.from_dict(tree.to_dict())
        assert clone.num_nodes == tree.num_nodes
        assert clone.num_levels == tree.num_levels
        for node in range(tree.num_nodes):
            assert clone.leaf_of(node) == tree.leaf_of(node)

    def test_round_trip_preserves_cost(self, solved):
        netlist, hierarchy, result = solved
        clone = PartitionTree.from_dict(result.partition.to_dict())
        assert (
            total_cost(netlist, clone, hierarchy)
            == total_cost(netlist, result.partition, hierarchy)
        )

    def test_survives_json_text(self, solved):
        tree = solved[2].partition
        text = json.dumps(tree.to_dict())
        clone = PartitionTree.from_dict(json.loads(text))
        assert clone.to_dict() == tree.to_dict()

    def test_from_nested_round_trip(self):
        nested = [[[0, 1], [2, 3]], [[4, 5], [6, 7]]]
        tree = PartitionTree.from_nested(nested, 8)
        assert PartitionTree.from_dict(tree.to_dict()).to_dict() == tree.to_dict()

    @pytest.mark.parametrize(
        "mutate",
        [
            lambda doc: doc.pop("vertices"),
            lambda doc: doc.pop("leaf_of"),
            lambda doc: doc.__setitem__("vertices", []),
            lambda doc: doc["vertices"].__setitem__(0, [0, 5]),
            lambda doc: doc.__setitem__("num_nodes", -1),
        ],
    )
    def test_malformed_payload_raises(self, solved, mutate):
        doc = solved[2].partition.to_dict()
        mutate(doc)
        with pytest.raises(PartitionError):
            PartitionTree.from_dict(doc)


class TestFlowHTPResultRoundTrip:
    def test_round_trip_is_bit_identical_json(self, solved):
        _netlist, _hierarchy, result = solved
        doc = result.to_dict()
        clone = FlowHTPResult.from_dict(json.loads(json.dumps(doc)))
        assert json.dumps(clone.to_dict(), sort_keys=True) == json.dumps(
            doc, sort_keys=True
        )

    def test_scalar_fields_survive(self, solved):
        _netlist, _hierarchy, result = solved
        clone = FlowHTPResult.from_dict(result.to_dict())
        assert clone.cost == result.cost
        assert clone.iteration_costs == result.iteration_costs
        assert clone.runtime_seconds == result.runtime_seconds

    def test_metric_results_survive(self, solved):
        _netlist, _hierarchy, result = solved
        clone = FlowHTPResult.from_dict(result.to_dict())
        assert len(clone.metric_results) == len(result.metric_results)
        for ours, theirs in zip(clone.metric_results, result.metric_results):
            assert np.array_equal(ours.lengths, theirs.lengths)
            assert ours.objective == theirs.objective
            assert ours.rounds == theirs.rounds
            assert ours.satisfied == theirs.satisfied

    def test_perf_counters_survive(self, solved):
        _netlist, _hierarchy, result = solved
        assert result.perf is not None
        clone = FlowHTPResult.from_dict(result.to_dict())
        assert clone.perf.as_dict() == result.perf.as_dict()

    def test_malformed_payload_raises(self, solved):
        doc = solved[2].to_dict()
        del doc["partition"]
        with pytest.raises(PartitionError):
            FlowHTPResult.from_dict(doc)


class TestPerfCountersFromDict:
    def test_round_trip(self):
        counters = PerfCounters()
        counters.dijkstra_calls = 7
        counters.cache_hits = 3
        counters.add_phase("solve", 1.5)
        clone = PerfCounters.from_dict(counters.as_dict())
        assert clone.as_dict() == counters.as_dict()

    def test_tolerates_missing_and_unknown_keys(self):
        clone = PerfCounters.from_dict(
            {"dijkstra_calls": 4, "not_a_counter": 9}
        )
        assert clone.dijkstra_calls == 4
        assert clone.cache_hits == 0
