"""Unit tests for the disjoint-set union structure."""

import random

from repro.algorithms.union_find import UnionFind


class TestUnionFind:
    def test_initially_disjoint(self):
        dsu = UnionFind(4)
        assert dsu.num_sets == 4
        assert not dsu.connected(0, 3)

    def test_union_connects(self):
        dsu = UnionFind(4)
        assert dsu.union(0, 1)
        assert dsu.connected(0, 1)
        assert dsu.num_sets == 3

    def test_union_same_set_returns_false(self):
        dsu = UnionFind(3)
        dsu.union(0, 1)
        assert not dsu.union(1, 0)
        assert dsu.num_sets == 2

    def test_transitivity(self):
        dsu = UnionFind(5)
        dsu.union(0, 1)
        dsu.union(1, 2)
        assert dsu.connected(0, 2)
        assert not dsu.connected(0, 3)

    def test_set_size(self):
        dsu = UnionFind(5)
        dsu.union(0, 1)
        dsu.union(1, 2)
        assert dsu.set_size(2) == 3
        assert dsu.set_size(4) == 1

    def test_sets_listing(self):
        dsu = UnionFind(4)
        dsu.union(0, 2)
        sets = dsu.sets()
        assert sorted(map(tuple, sets)) == [(0, 2), (1,), (3,)]

    def test_random_against_naive(self):
        rng = random.Random(3)
        n = 60
        dsu = UnionFind(n)
        labels = list(range(n))  # naive labelling
        for _ in range(120):
            a, b = rng.randrange(n), rng.randrange(n)
            dsu.union(a, b)
            la, lb = labels[a], labels[b]
            if la != lb:
                labels = [la if x == lb else x for x in labels]
        for _ in range(200):
            a, b = rng.randrange(n), rng.randrange(n)
            assert dsu.connected(a, b) == (labels[a] == labels[b])
        assert dsu.num_sets == len(set(labels))
