"""Unit tests for Prim growth, Prim MST and Kruskal MST."""

import math
import random

import pytest

from repro.algorithms.prim import prim_growth, prim_mst
from repro.algorithms.spanning import kruskal_mst
from repro.hypergraph import Graph
from repro.hypergraph.generators import figure2_graph


def weighted_graph(seed=0):
    rng = random.Random(seed)
    g = figure2_graph()
    lengths = [rng.uniform(0.5, 3.0) for _ in range(g.num_edges)]
    return g, lengths


class TestPrimGrowth:
    def test_covers_all_nodes_once(self):
        g, lengths = weighted_graph()
        nodes = [v for v, _c, _e in prim_growth(g, [0], lengths)]
        assert sorted(nodes) == list(range(16))

    def test_seed_comes_first(self):
        g, lengths = weighted_graph()
        first, cost, edge = next(iter(prim_growth(g, [7], lengths)))
        assert first == 7
        assert math.isinf(cost)
        assert edge == -1

    def test_disconnected_graph_restarts(self):
        g = Graph(4, edges=[(0, 1), (2, 3)])
        steps = list(prim_growth(g, [0], [1.0, 1.0]))
        assert sorted(v for v, _c, _e in steps) == [0, 1, 2, 3]
        jumps = [v for v, cost, _e in steps if math.isinf(cost)]
        assert len(jumps) == 2  # the seed plus one restart

    def test_attachment_edges_touch_region(self):
        g, lengths = weighted_graph(3)
        region = set()
        for node, cost, edge_id in prim_growth(g, [5], lengths):
            if edge_id >= 0:
                u, v = g.edge(edge_id)
                assert node in (u, v)
                other = v if node == u else u
                assert other in region
            region.add(node)


class TestMST:
    def test_prim_and_kruskal_agree_on_weight(self):
        g, lengths = weighted_graph(11)
        prim_edges = prim_mst(g, lengths)
        kruskal_edges = kruskal_mst(g, lengths)
        assert len(prim_edges) == 15
        assert len(kruskal_edges) == 15
        prim_weight = sum(lengths[e] for e in prim_edges)
        kruskal_weight = sum(lengths[e] for e in kruskal_edges)
        assert prim_weight == pytest.approx(kruskal_weight)

    def test_matches_networkx(self):
        import networkx as nx

        g, lengths = weighted_graph(23)
        nxg = nx.Graph()
        for eid, (u, v) in enumerate(g.edges()):
            nxg.add_edge(u, v, weight=lengths[eid])
        expected = sum(
            d["weight"]
            for _u, _v, d in nx.minimum_spanning_tree(nxg).edges(data=True)
        )
        ours = sum(lengths[e] for e in kruskal_mst(g, lengths))
        assert ours == pytest.approx(expected)

    def test_spanning_forest_on_disconnected(self):
        g = Graph(4, edges=[(0, 1, 1.0), (2, 3, 1.0)])
        assert len(kruskal_mst(g)) == 2
        assert len(prim_mst(g)) == 2

    def test_default_weights_are_capacities(self):
        g = Graph(3, edges=[(0, 1, 5.0), (1, 2, 1.0), (0, 2, 1.0)])
        edges = kruskal_mst(g)
        weights = sorted(g.capacity(e) for e in edges)
        assert weights == [1.0, 1.0]
