"""Unit tests for Algorithm 1 (the FLOW driver)."""

import pytest

from repro.core.flow_htp import FlowHTPConfig, flow_htp
from repro.core.spreading_metric import SpreadingMetricConfig
from repro.htp.cost import total_cost
from repro.htp.validate import check_partition


class TestConfig:
    def test_rejects_bad_iterations(self):
        with pytest.raises(ValueError):
            FlowHTPConfig(iterations=0)
        with pytest.raises(ValueError):
            FlowHTPConfig(constructions_per_metric=0)


class TestFigure2:
    def test_finds_the_optimum(self, fig2_hypergraph, fig2_spec, fig2_graph):
        result = flow_htp(
            fig2_hypergraph,
            fig2_spec,
            FlowHTPConfig(
                iterations=2, constructions_per_metric=4, seed=1
            ),
            graph=fig2_graph,
        )
        assert result.cost == pytest.approx(20.0)
        check_partition(fig2_hypergraph, result.partition, fig2_spec)

    def test_reported_cost_matches_partition(
        self, fig2_hypergraph, fig2_spec, fig2_graph
    ):
        result = flow_htp(
            fig2_hypergraph,
            fig2_spec,
            FlowHTPConfig(iterations=1, seed=2),
            graph=fig2_graph,
        )
        assert result.cost == pytest.approx(
            total_cost(fig2_hypergraph, result.partition, fig2_spec)
        )

    def test_diagnostics_lengths(self, fig2_hypergraph, fig2_spec, fig2_graph):
        result = flow_htp(
            fig2_hypergraph,
            fig2_spec,
            FlowHTPConfig(iterations=3, seed=0),
            graph=fig2_graph,
        )
        assert len(result.iteration_costs) == 3
        assert len(result.metric_objectives) == 3
        assert len(result.metric_results) == 3
        assert result.cost == pytest.approx(min(result.iteration_costs))
        assert result.runtime_seconds > 0

    def test_builds_graph_when_not_given(self, fig2_hypergraph, fig2_spec):
        result = flow_htp(
            fig2_hypergraph,
            fig2_spec,
            FlowHTPConfig(iterations=1, seed=0),
        )
        check_partition(fig2_hypergraph, result.partition, fig2_spec)

    @pytest.mark.parametrize("strategy", ["prim", "mst", "both"])
    def test_strategies_all_work(
        self, fig2_hypergraph, fig2_spec, fig2_graph, strategy
    ):
        result = flow_htp(
            fig2_hypergraph,
            fig2_spec,
            FlowHTPConfig(
                iterations=1,
                constructions_per_metric=2,
                find_cut_strategy=strategy,
                seed=3,
            ),
            graph=fig2_graph,
        )
        check_partition(fig2_hypergraph, result.partition, fig2_spec)


class TestPlantedInstance:
    def test_valid_and_reasonable(self, medium_planted, medium_planted_spec):
        result = flow_htp(
            medium_planted,
            medium_planted_spec,
            FlowHTPConfig(
                iterations=1,
                constructions_per_metric=4,
                seed=0,
                metric=SpreadingMetricConfig(
                    alpha=0.5, delta=0.05, seed=0
                ),
            ),
        )
        check_partition(medium_planted, result.partition, medium_planted_spec)
        # sanity: better than a random partition by a wide margin
        import random

        from repro.partitioning.random_init import random_partition

        rand_cost = total_cost(
            medium_planted,
            random_partition(
                medium_planted, medium_planted_spec, rng=random.Random(0)
            ),
            medium_planted_spec,
        )
        assert result.cost < rand_cost

    def test_multi_construct_no_worse_than_single(
        self, medium_planted, medium_planted_spec
    ):
        base = FlowHTPConfig(
            iterations=1, constructions_per_metric=1, seed=5
        )
        multi = FlowHTPConfig(
            iterations=1, constructions_per_metric=6, seed=5
        )
        single_result = flow_htp(medium_planted, medium_planted_spec, base)
        multi_result = flow_htp(medium_planted, medium_planted_spec, multi)
        assert multi_result.cost <= single_result.cost + 1e-9


class TestExactRefine:
    """The opt-in DP post-pass (``exact_refine=True``)."""

    def test_refine_never_worsens_and_hits_tree_optimum(self):
        from repro.analysis.exact import solve_exact
        from repro.htp.hierarchy import HierarchySpec
        from repro.hypergraph.hypergraph import Hypergraph

        h = Hypergraph(8, [(i, i + 1) for i in range(7)])
        spec = HierarchySpec(
            capacities=(2, 4, 8), branching=(2, 2), weights=(1, 2)
        )
        base = flow_htp(h, spec, FlowHTPConfig(iterations=1, seed=0))
        refined = flow_htp(
            h, spec, FlowHTPConfig(iterations=1, seed=0, exact_refine=True)
        )
        assert refined.cost <= base.cost
        # on a tree instance the post-pass lands on the proven optimum
        assert refined.cost == solve_exact(h, spec, method="dp").cost
        check_partition(h, refined.partition, spec)
        assert refined.cost == total_cost(h, refined.partition, spec)

    def test_exact_refine_stays_outside_resume_fingerprint(
        self, fig2_hypergraph, fig2_spec
    ):
        from repro.core.checkpoint import run_fingerprint

        off = FlowHTPConfig(iterations=1, seed=0)
        on = FlowHTPConfig(iterations=1, seed=0, exact_refine=True)
        assert run_fingerprint(
            fig2_hypergraph, fig2_spec, off
        ) == run_fingerprint(fig2_hypergraph, fig2_spec, on)
