#!/usr/bin/env python3
"""The flow/cut duality that motivates the whole paper, made visible.

Section 1: "graph edges which are more saturated in a flow computation
are more likely to form a cut that disconnects clusters of nodes with
high density.  In other words, network flow computations can uncover the
hierarchical structures of circuits."

This example routes a handful of commodities across the Figure 2 graph
with the exponential-length concurrent-flow engine and shows that the
most congested edges are exactly the planted inter-block cut edges —
then runs the ratio-cut heuristic and the exact reference to confirm the
cut they point at.

Run:  python examples/flow_cut_duality.py
"""

import random

from repro.core.concurrent_flow import (
    Commodity,
    cut_throughput_bound,
    max_concurrent_flow,
)
from repro.core.ratio_cut import exact_ratio_cut, ratio_cut
from repro.hypergraph.generators import figure2_graph, figure2_hypergraph


def main() -> None:
    graph = figure2_graph()
    netlist = figure2_hypergraph()

    commodities = [
        Commodity(0, 15),
        Commodity(3, 12),
        Commodity(5, 10),
        Commodity(6, 9),
    ]
    result = max_concurrent_flow(graph, commodities, max_phases=80)
    print(f"concurrent throughput lambda ~ {result.throughput:.3f}")
    bound = cut_throughput_bound(graph, commodities, list(range(8)))
    print(f"planted-cut duality bound:     {bound:.3f}")

    print("\nmost congested edges (flow/capacity):")
    planted_cut = {(1, 9), (6, 14)}
    for edge_id in result.most_congested_edges(4):
        u, v = graph.edge(edge_id)
        marker = "  <-- planted level-1 cut" if (u, v) in planted_cut else ""
        print(
            f"  edge ({u:2d},{v:2d}): congestion "
            f"{result.congestion[edge_id]:.2f}{marker}"
        )

    heuristic = ratio_cut(
        netlist, graph=graph, rng=random.Random(0), restarts=6
    )
    exact = exact_ratio_cut(netlist)
    print(
        f"\nratio cut: heuristic {heuristic.ratio:.4f} "
        f"(side {heuristic.side})"
    )
    print(f"           exact     {exact.ratio:.4f} (side {exact.side})")


if __name__ == "__main__":
    main()
