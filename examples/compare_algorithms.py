#!/usr/bin/env python3
"""Compare the three constructive algorithms (+ FM improvement).

Reproduces the Table 2 / Table 3 methodology on one circuit: run GFM,
RFM and FLOW on an ISCAS85 surrogate, improve each with the hierarchical
FM phase, and print a comparison table.

Run:  python examples/compare_algorithms.py [circuit] [scale]
e.g.  python examples/compare_algorithms.py c1355 1.0
"""

import random
import sys
import time

from repro import (
    FlowHTPConfig,
    SpreadingMetricConfig,
    binary_hierarchy,
    check_partition,
    flow_htp,
    gfm_partition,
    htp_fm_improve,
    iscas85_surrogate,
    rfm_partition,
    total_cost,
)
from repro.analysis.tables import Table


def main() -> None:
    circuit = sys.argv[1] if len(sys.argv) > 1 else "c1355"
    scale = float(sys.argv[2]) if len(sys.argv) > 2 else 1.0

    netlist = iscas85_surrogate(circuit, scale=scale)
    spec = binary_hierarchy(netlist.total_size(), height=4)
    print(
        f"{circuit} (scale {scale}): {netlist.num_nodes} nodes, "
        f"{netlist.num_nets} nets, {netlist.num_pins} pins"
    )

    results = {}

    start = time.perf_counter()
    gfm_tree = gfm_partition(netlist, spec, rng=random.Random(0))
    results["GFM"] = (gfm_tree, time.perf_counter() - start)

    start = time.perf_counter()
    rfm_tree = rfm_partition(netlist, spec, rng=random.Random(0))
    results["RFM"] = (rfm_tree, time.perf_counter() - start)

    flow_result = flow_htp(
        netlist,
        spec,
        FlowHTPConfig(
            iterations=3,
            constructions_per_metric=8,
            find_cut_restarts=3,
            seed=0,
            metric=SpreadingMetricConfig(
                alpha=0.3, delta=0.03, epsilon=0.1, max_rounds=1000
            ),
        ),
    )
    results["FLOW"] = (flow_result.partition, flow_result.runtime_seconds)

    table = Table(
        title=f"Constructive + improved results on {circuit}",
        headers=["algorithm", "cost", "cost (+FM)", "improv.", "seconds"],
    )
    for name, (tree, seconds) in results.items():
        check_partition(netlist, tree, spec)
        cost = total_cost(netlist, tree, spec)
        improved = htp_fm_improve(netlist, tree, spec)
        table.add_row(
            name,
            cost,
            improved.final_cost,
            f"{improved.improvement:.1%}",
            round(seconds, 2),
        )
    print()
    print(table.render())


if __name__ == "__main__":
    main()
