#!/usr/bin/env python3
"""Walkthrough of the paper's Figure 2, step by step.

Reconstructs the worked example: the 16-node, 30-edge graph, its optimal
hierarchical tree partition under C = (4, 8), w = (1, 2), the induced
spreading metric with values {0, 2, 6}, the tight LP lower bound, and the
FLOW algorithm rediscovering the optimum.

Run:  python examples/figure2_walkthrough.py
"""

from repro import FlowHTPConfig, flow_htp, solve_spreading_lp, total_cost
from repro.htp.cost import induced_metric, net_cost
from repro.htp.hierarchy import figure2_hierarchy
from repro.htp.partition import PartitionTree
from repro.hypergraph.generators import (
    figure2_graph,
    figure2_hypergraph,
    figure2_optimal_blocks,
)


def main() -> None:
    graph = figure2_graph()
    netlist = figure2_hypergraph()
    spec = figure2_hierarchy()
    print("Figure 2 instance:")
    print(f"  {graph.num_nodes} nodes, {graph.num_edges} unit edges")
    print(f"  hierarchy: C = (4, 8), w = (1, 2)\n")

    # The optimal partition: four 4-node cliques, paired into two blocks.
    blocks = figure2_optimal_blocks()
    optimal = PartitionTree.from_nested(
        [[blocks[0], blocks[1]], [blocks[2], blocks[3]]], 16
    )
    cost = total_cost(netlist, optimal, spec)
    print(f"optimal partition cost (Equation 1): {cost:g}")
    print(optimal.render(netlist.node_sizes()))

    # Every cut edge's cost, exactly as labelled in the figure.
    print("\ncut edges and their costs:")
    for net_id, pins in enumerate(netlist.nets()):
        edge_cost = net_cost(netlist, optimal, spec, net_id)
        if edge_cost > 0:
            print(f"  edge {pins}: cost {edge_cost:g}")

    # Lemma 1: d(e) = cost(e)/c(e) is a feasible spreading metric.
    metric = induced_metric(netlist, optimal, spec)
    print(f"\ninduced spreading metric values: {sorted(set(metric))}")

    # Lemma 2: the LP optimum lower-bounds every partition; here tight.
    lp = solve_spreading_lp(graph, spec)
    print(f"LP (P1) optimum: {lp.lower_bound:.3f}  (tight on this instance)")

    # And FLOW rediscovers the optimum from scratch.
    result = flow_htp(
        netlist,
        spec,
        FlowHTPConfig(iterations=2, constructions_per_metric=4, seed=1),
        graph=graph,
    )
    print(f"FLOW (Algorithm 1) cost: {result.cost:g}")


if __name__ == "__main__":
    main()
