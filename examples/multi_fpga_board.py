#!/usr/bin/env python3
"""Multi-FPGA prototyping: the application the paper's HTP problem models.

A design implemented on a hardware hierarchy — a rack of 2 boards, each
with 2 FPGAs, each FPGA with 2 logic regions — is exactly a hierarchical
tree partition of height 3.  The cost weights encode the technology:
crossing a board boundary (backplane connectors) is far more expensive
than crossing between FPGAs on a board (board traces), which is more
expensive than a region crossing inside an FPGA.

The example partitions a surrogate netlist with FLOW, reports the
weighted I/O cost and per-level cut statistics, and round-trips the
netlist through the hMETIS file format.

Run:  python examples/multi_fpga_board.py
"""

import tempfile
from pathlib import Path

from repro import (
    FlowHTPConfig,
    HierarchySpec,
    check_partition,
    flow_htp,
    planted_hierarchy_hypergraph,
    total_cost,
)
from repro.htp.cost import net_span
from repro.hypergraph import io as hio


def build_hierarchy(total_size: float) -> HierarchySpec:
    """Rack -> boards -> FPGAs -> regions, with technology cost weights."""
    region_cap = float(round(total_size / 8 * 1.15))
    fpga_cap = float(round(total_size / 4 * 1.10))
    board_cap = float(round(total_size / 2 * 1.05))
    return HierarchySpec(
        capacities=(region_cap, fpga_cap, board_cap, float(total_size)),
        branching=(2, 2, 2),
        # region crossing: cheap; FPGA crossing: I/O pins; board crossing:
        # backplane connectors — the dominant cost.
        weights=(1.0, 4.0, 10.0),
    )


def main() -> None:
    netlist = planted_hierarchy_hypergraph(
        num_nodes=512, height=3, seed=7, name="prototype-design"
    )

    # Designs are normally interchanged as hMETIS files; round-trip one.
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "design.hgr"
        hio.write_hgr(netlist, path)
        netlist = hio.read_hgr(path, name="prototype-design")
    print(
        f"design: {netlist.num_nodes} cells, {netlist.num_nets} nets, "
        f"{netlist.num_pins} pins"
    )

    spec = build_hierarchy(netlist.total_size())
    print("hardware hierarchy (level = rack/board/FPGA/region):")
    print(spec.describe())

    result = flow_htp(
        netlist,
        spec,
        FlowHTPConfig(iterations=2, constructions_per_metric=6, seed=1),
    )
    check_partition(netlist, result.partition, spec)

    print(f"\nweighted I/O cost: {result.cost:g} "
          f"({result.runtime_seconds:.2f}s)")
    level_names = {0: "region", 1: "FPGA", 2: "board"}
    for level in range(spec.num_levels):
        cut_nets = sum(
            1
            for e in range(netlist.num_nets)
            if net_span(netlist, result.partition, e, level) >= 2
        )
        print(
            f"  nets crossing a {level_names[level]} boundary: "
            f"{cut_nets} (weight {spec.weight(level):g})"
        )
    assert result.cost == total_cost(netlist, result.partition, spec)


if __name__ == "__main__":
    main()
