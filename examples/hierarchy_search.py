#!/usr/bin/env python3
"""Finding the hierarchy, not just the partition.

The HTP problem as posed in the paper includes choosing the hierarchy:
"there are many hierarchies into which we can partition a circuit.  The
problem is how to find a hierarchy and a partition so that the
interconnection cost is minimized."  This example sweeps binary-tree
heights with technology-motivated weights (each extra level of packaging
multiplies the crossing cost) and reports the cheapest hierarchy.

Run:  python examples/hierarchy_search.py
"""

from repro.analysis.tables import Table
from repro.htp.hierarchy_search import search_hierarchies
from repro.hypergraph.generators import planted_hierarchy_hypergraph


def technology_weights(height: int):
    """Crossing a level-l boundary costs 2^l (deeper = more expensive)."""
    return tuple(float(2**level) for level in range(height))


def main() -> None:
    netlist = planted_hierarchy_hypergraph(
        num_nodes=512, height=3, seed=21, name="design"
    )
    print(
        f"design: {netlist.num_nodes} cells, {netlist.num_nets} nets; "
        f"sweeping binary hierarchies of height 1..5"
    )

    candidates = search_hierarchies(
        netlist,
        heights=(1, 2, 3, 4, 5),
        algorithm="rfm",
        weights_for=technology_weights,
        seed=0,
    )

    table = Table(
        title="hierarchy sweep (RFM, weights w_l = 2^l)",
        headers=["height", "leaves", "C_0", "cost", "seconds", "valid"],
    )
    for candidate in sorted(candidates, key=lambda c: c.height):
        table.add_row(
            candidate.height,
            2**candidate.height,
            candidate.spec.capacity(0),
            candidate.cost,
            round(candidate.seconds, 2),
            str(candidate.valid),
        )
    print()
    print(table.render())

    best = next(c for c in candidates if c.valid)
    print(
        f"\nbest hierarchy: height {best.height} "
        f"({2 ** best.height} leaf blocks) at cost {best.cost:g}"
    )


if __name__ == "__main__":
    main()
