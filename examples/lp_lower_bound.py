#!/usr/bin/env python3
"""Lemmas 1 and 2 in action: the exact LP lower bound of (P1).

* Lemma 1: every valid partition induces a feasible spreading metric
  ``d(e) = cost(e) / c(e)`` whose objective equals the partition cost.
* Lemma 2: the optimal LP objective lower-bounds every partition's cost.

This example solves (P1) exactly by cutting planes on the paper's
Figure 2 instance (where the bound is *tight*: LP = optimum = 20) and on
a small planted netlist (where it shows the typical integrality gap).

Run:  python examples/lp_lower_bound.py
"""

import random

from repro import (
    FlowHTPConfig,
    binary_hierarchy,
    flow_htp,
    planted_hierarchy_hypergraph,
    solve_spreading_lp,
    to_graph,
    total_cost,
)
from repro.core.lp import verify_metric_feasibility
from repro.htp.cost import induced_metric
from repro.htp.hierarchy import figure2_hierarchy
from repro.htp.partition import PartitionTree
from repro.hypergraph.generators import (
    figure2_graph,
    figure2_hypergraph,
    figure2_optimal_blocks,
)


def figure2_demo() -> None:
    print("=== Figure 2 (the paper's worked example) ===")
    graph = figure2_graph()
    netlist = figure2_hypergraph()
    spec = figure2_hierarchy()

    lp = solve_spreading_lp(graph, spec)
    print(
        f"LP lower bound: {lp.lower_bound:.3f} "
        f"({lp.iterations} cutting-plane iterations, "
        f"{lp.num_constraints} constraints)"
    )

    blocks = figure2_optimal_blocks()
    optimal = PartitionTree.from_nested(
        [[blocks[0], blocks[1]], [blocks[2], blocks[3]]], 16
    )
    cost = total_cost(netlist, optimal, spec)
    print(f"optimal partition cost: {cost:g}  (bound is tight here)")

    metric = induced_metric(netlist, optimal, spec)
    feasible, _violation = verify_metric_feasibility(graph, spec, metric)
    print(f"Lemma 1 - induced metric feasible: {feasible}")
    print(f"induced metric values: {sorted(set(metric))}")


def planted_demo() -> None:
    print("\n=== Small planted netlist (typical integrality gap) ===")
    netlist = planted_hierarchy_hypergraph(48, height=2, seed=3)
    spec = binary_hierarchy(netlist.total_size(), height=2)
    graph = to_graph(netlist)

    lp = solve_spreading_lp(graph, spec, max_iterations=80)
    flow = flow_htp(
        netlist, spec, FlowHTPConfig(iterations=2, seed=0), graph=graph
    )
    print(f"LP lower bound:   {lp.lower_bound:.2f}")
    print(f"FLOW upper bound: {flow.cost:.2f}")
    if lp.lower_bound > 0:
        print(f"gap factor:       {flow.cost / lp.lower_bound:.2f}x")


if __name__ == "__main__":
    figure2_demo()
    planted_demo()
