#!/usr/bin/env python3
"""Partitioning a bit-sliced datapath: hierarchy vs greedy tension.

Bit-sliced datapaths are the classic stress case the HTP formulation is
motivated by: within each functional unit the carry chains run along the
slice direction, so a greedy min-cut sees many equally cheap cuts that
slice *through* units, while the real modular hierarchy (units, unit
pairs, ...) is only visible globally.  This example compares RFM's greedy
top-down carving against FLOW's metric-guided construction, and prints
the classic flat metrics (cut nets, SOED, K-1) per level for both.

Run:  python examples/datapath_partitioning.py
"""

import random

from repro import (
    FlowHTPConfig,
    SpreadingMetricConfig,
    binary_hierarchy,
    check_partition,
    flow_htp,
    rfm_partition,
    total_cost,
)
from repro.analysis.tables import Table
from repro.htp.flat import level_profile
from repro.hypergraph.generators import datapath_hypergraph


def main() -> None:
    netlist = datapath_hypergraph(
        num_nodes=640, num_units=16, width=8, seed=11, name="alu-datapath"
    )
    spec = binary_hierarchy(netlist.total_size(), height=4)
    print(
        f"datapath: {netlist.num_nodes} cells, {netlist.num_nets} nets, "
        f"{netlist.num_pins} pins; hierarchy of height 4"
    )

    rfm_tree = rfm_partition(netlist, spec, rng=random.Random(0))
    check_partition(netlist, rfm_tree, spec)
    rfm_cost = total_cost(netlist, rfm_tree, spec)

    flow_result = flow_htp(
        netlist,
        spec,
        FlowHTPConfig(
            iterations=2,
            constructions_per_metric=6,
            seed=0,
            metric=SpreadingMetricConfig(
                alpha=0.3, delta=0.03, epsilon=0.1, max_rounds=1000
            ),
        ),
    )
    check_partition(netlist, flow_result.partition, spec)

    print(f"\nRFM  (greedy top-down) cost: {rfm_cost:g}")
    print(f"FLOW (metric-guided)   cost: {flow_result.cost:g}")

    table = Table(
        title="per-level flat metrics (cut nets / SOED / K-1)",
        headers=["level", "RFM cut", "RFM SOED", "FLOW cut", "FLOW SOED"],
    )
    rfm_profile = level_profile(netlist, rfm_tree)
    flow_profile = level_profile(netlist, flow_result.partition)
    for level, (r, f) in enumerate(zip(rfm_profile, flow_profile)):
        table.add_row(level, r.cut_nets, r.soed, f.cut_nets, f.soed)
    print()
    print(table.render())


if __name__ == "__main__":
    main()
