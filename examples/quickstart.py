#!/usr/bin/env python3
"""Quickstart: partition a synthetic netlist into a binary tree hierarchy.

Generates a 256-node netlist with planted cluster structure, builds the
paper's standard experimental hierarchy (full binary tree), runs the FLOW
algorithm (Algorithm 1), and prints the resulting partition tree and cost.

Run:  python examples/quickstart.py
"""

from repro import (
    FlowHTPConfig,
    binary_hierarchy,
    check_partition,
    flow_htp,
    planted_hierarchy_hypergraph,
    total_cost,
)


def main() -> None:
    # A netlist: 256 unit-size nodes, ~1.06 nets per node, with a planted
    # recursive cluster structure for the partitioner to discover.
    netlist = planted_hierarchy_hypergraph(
        num_nodes=256, height=3, seed=42, name="quickstart"
    )
    print(
        f"netlist: {netlist.num_nodes} nodes, {netlist.num_nets} nets, "
        f"{netlist.num_pins} pins"
    )

    # The hierarchy: a full binary tree of height 3 (8 leaf blocks), each
    # level's capacity 10% above the perfectly balanced share.
    spec = binary_hierarchy(netlist.total_size(), height=3)
    print("hierarchy:")
    print(spec.describe())

    # FLOW = Algorithm 1: spreading metric (Algorithm 2) + top-down
    # construction (Algorithm 3), best of N iterations.
    result = flow_htp(
        netlist,
        spec,
        FlowHTPConfig(iterations=2, constructions_per_metric=4, seed=0),
    )
    check_partition(netlist, result.partition, spec)

    print(f"\nFLOW cost: {result.cost:g}  "
          f"({result.runtime_seconds:.2f}s, "
          f"{len(result.metric_results)} metric iterations)")
    print("\npartition tree:")
    print(result.partition.render(netlist.node_sizes()))

    # The reported cost is exactly Equation (1) evaluated on the netlist.
    assert result.cost == total_cost(netlist, result.partition, spec)


if __name__ == "__main__":
    main()
