#!/usr/bin/env sh
# Tier-1 verification: an optional native-kernel build (SKIPs cleanly
# when no C toolchain is present — every engine then degrades to
# scipy), the full unit suite, the chaos (fault-injection replay)
# suite, a collect-only guard keeping every benchmark file importable
# (they are not part of tier-1, so a stray import error would
# otherwise go unnoticed until someone tries to reproduce a table),
# a budget-capped multilevel scaling smoke (the whole V-cycle on tiny
# Rent instances), an optimality-gap smoke (FLOW vs the exact oracles
# on the golden corpus; ILP rows SKIP without pulp), the service smoke
# (htp serve / htp submit as real processes: cold
# solve, warm cache hit, graceful drain), the cluster smoke (htp route
# + two joined workers with private scratch: routed solve, shared-cache
# warm hit, mid-solve worker kill resumed from HTTP-replicated
# checkpoints to a bit-identical finish), the cluster partition drill
# (primary router behind the netfaults TCP proxy: link severed
# mid-flight, warm standby takes over with a bumped fencing epoch, the
# zombie primary's forwards are refused), the documentation checker
# (runnable snippets, live links, complete benchmark table, required
# sections), and the coverage gate (line coverage of src/repro/core
# and src/repro/service may not drop below the committed baseline).
#
# Usage: sh scripts/verify.sh   (or: make verify)
set -e
cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== build-kernel (optional native extension) =="
# OptionalBuildExt already downgrades compiler failures to a warning;
# the || branch catches a setup that cannot even start (no setuptools
# C machinery at all).  Either way the suite below must still pass —
# that IS the no-compiler degradation contract.
if python setup.py build_ext --inplace >/dev/null 2>&1; then
    python -c "
from repro.core import _kernel
if _kernel.available():
    print('native kernel built')
else:
    print('SKIP: native kernel not importable (' + _kernel.unavailable_reason() + ')')
"
else
    echo "SKIP: build_ext failed (no C toolchain?) — native engine degrades to scipy"
fi

echo "== tier-1 tests =="
python -m pytest -x -q

echo "== chaos suite =="
python -m pytest -m chaos -q

echo "== benchmark import guard =="
python -m pytest benchmarks/bench_micro.py benchmarks/bench_spreading_batch.py --co -q

echo "== multilevel scaling smoke (REPRO_BENCH_SCALE=0.02) =="
# Budget-capped: ~200/2000-node instances keep this under ~10s while
# still driving the whole V-cycle (coarsen, coarse solve, corridor
# refinement) and the flat-FLOW budget machinery end to end.
REPRO_BENCH_SCALE=0.02 python -m pytest benchmarks/bench_multilevel.py -q

echo "== optimality-gap smoke (exact oracles vs FLOW on the golden corpus) =="
# Fast by construction: the corpus is sized for exact solvability.
# ILP cross-check rows SKIP cleanly when no pulp/CBC solver is
# installed; the DP and branch-and-bound oracles always run.
python -m pytest benchmarks/bench_optimality.py -q

echo "== service smoke =="
python scripts/serve_smoke.py

echo "== cluster smoke =="
python scripts/cluster_smoke.py

echo "== cluster partition drill =="
python scripts/cluster_smoke.py --drill partition

echo "== docs check =="
python scripts/docs_check.py

echo "== coverage gate (core + service) =="
python scripts/coverage_core.py --check

echo "verify OK"
