#!/usr/bin/env sh
# Tier-1 verification: the full unit suite, the chaos (fault-injection
# replay) suite, a collect-only guard keeping every benchmark file
# importable (they are not part of tier-1, so a stray import error
# would otherwise go unnoticed until someone tries to reproduce a
# table), the service smoke (htp serve / htp submit as real processes:
# cold solve, warm cache hit, graceful drain), the documentation
# checker (runnable snippets, live links, complete benchmark table),
# and the coverage gate (line coverage of src/repro/core and
# src/repro/service may not drop below the committed baseline).
#
# Usage: sh scripts/verify.sh   (or: make verify)
set -e
cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== tier-1 tests =="
python -m pytest -x -q

echo "== chaos suite =="
python -m pytest -m chaos -q

echo "== benchmark import guard =="
python -m pytest benchmarks/bench_micro.py benchmarks/bench_spreading_batch.py --co -q

echo "== service smoke =="
python scripts/serve_smoke.py

echo "== docs check =="
python scripts/docs_check.py

echo "== coverage gate (core + service) =="
python scripts/coverage_core.py --check

echo "verify OK"
