#!/usr/bin/env python
"""Line coverage for ``src/repro/core`` with no third-party dependency.

The container has no ``coverage`` package, so this is a small stdlib
tracer: executable lines come from ``dis.findlinestarts`` over every
(recursively nested) code object of each ``core`` module, hits come
from a ``sys.settrace`` hook active while a focused pytest subset runs
in-process.  Worker-process execution is not traced — the measured
number is coordinator-side coverage, which is what the guard cares
about (the ladder / fault paths all run on the coordinator).

Usage::

    python scripts/coverage_core.py --check            # enforce baseline
    python scripts/coverage_core.py --write-baseline   # refresh baseline
    python scripts/coverage_core.py                    # report only

``--check`` fails (exit 1) when total line coverage of ``repro.core``
drops more than ``TOLERANCE_PTS`` percentage points below the committed
baseline (``scripts/coverage_baseline.json``) — the "coverage may not
regress" gate of scripts/verify.sh.
"""

from __future__ import annotations

import dis
import json
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
CORE = REPO / "src" / "repro" / "core"
BASELINE = REPO / "scripts" / "coverage_baseline.json"

#: Allowed slack before --check fails, in percentage points.  Some core
#: branches (pool respawn timing, fallback paths) are exercised by
#: wall-clock-dependent tests, so exact equality would be flaky.
TOLERANCE_PTS = 1.0

#: The focused subset driving execution.  Kept explicit (not the whole
#: suite) so the traced run stays fast and deterministic.
COVERAGE_TESTS = [
    "tests/test_faults.py",
    "tests/test_gfunc.py",
    "tests/test_constraints.py",
    "tests/test_batched_oracle.py",
    "tests/test_spreading_metric.py",
    "tests/test_parallel_engine.py",
    "tests/test_flow_htp.py",
    "tests/test_construct.py",
    "tests/test_concurrent_flow.py",
    "tests/test_lp.py",
    "tests/test_separator.py",
    "tests/test_ratio_cut.py",
    "tests/test_invariant_properties.py",
    "tests/chaos",
]


def executable_lines(path: Path) -> set:
    """Line numbers holding at least one bytecode instruction."""
    code = compile(path.read_text(), str(path), "exec")
    lines = set()
    stack = [code]
    while stack:
        obj = stack.pop()
        for _offset, line in dis.findlinestarts(obj):
            if line is not None:
                lines.add(line)
        for const in obj.co_consts:
            if hasattr(const, "co_code"):
                stack.append(const)
    return lines


def run_traced() -> dict:
    """Hits per core file after running the focused pytest subset."""
    targets = {
        str(path): executable_lines(path)
        for path in sorted(CORE.glob("*.py"))
    }
    hits = {name: set() for name in targets}

    def line_tracer(frame, event, arg):
        if event == "line":
            hits[frame.f_code.co_filename].add(frame.f_lineno)
        return line_tracer

    def call_tracer(frame, event, arg):
        if frame.f_code.co_filename in targets:
            return line_tracer
        return None

    import pytest

    sys.settrace(call_tracer)
    try:
        exit_code = pytest.main(["-q", "-x", "--no-header", "-p", "no:cacheprovider"]
                                + COVERAGE_TESTS)
    finally:
        sys.settrace(None)
    if exit_code != 0:
        print(f"coverage run failed: pytest exited {exit_code}", file=sys.stderr)
        raise SystemExit(1)
    return {
        name: {
            "executable": len(lines),
            "hit": len(hits[name] & lines),
        }
        for name, lines in targets.items()
    }


def summarise(per_file: dict) -> dict:
    executable = sum(entry["executable"] for entry in per_file.values())
    hit = sum(entry["hit"] for entry in per_file.values())
    return {
        "total_executable": executable,
        "total_hit": hit,
        "percent": round(100.0 * hit / executable, 2) if executable else 100.0,
        "files": {
            str(Path(name).relative_to(REPO)): round(
                100.0 * entry["hit"] / entry["executable"], 2
            )
            if entry["executable"]
            else 100.0
            for name, entry in per_file.items()
        },
    }


def main(argv) -> int:
    write = "--write-baseline" in argv
    check = "--check" in argv
    summary = summarise(run_traced())
    print(f"\nrepro.core line coverage: {summary['percent']}% "
          f"({summary['total_hit']}/{summary['total_executable']} lines)")
    for name, pct in sorted(summary["files"].items()):
        print(f"  {pct:6.2f}%  {name}")

    if write:
        BASELINE.write_text(json.dumps(summary, indent=2) + "\n")
        print(f"baseline written to {BASELINE.relative_to(REPO)}")
        return 0
    if check:
        if not BASELINE.is_file():
            print("no coverage baseline committed; run --write-baseline",
                  file=sys.stderr)
            return 1
        baseline = json.loads(BASELINE.read_text())
        floor = baseline["percent"] - TOLERANCE_PTS
        if summary["percent"] < floor:
            print(
                f"FAIL: core coverage {summary['percent']}% dropped below "
                f"baseline {baseline['percent']}% - {TOLERANCE_PTS} pt "
                f"tolerance (floor {floor:.2f}%)",
                file=sys.stderr,
            )
            return 1
        print(
            f"coverage OK (baseline {baseline['percent']}%, floor "
            f"{floor:.2f}%)"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
