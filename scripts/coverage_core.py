#!/usr/bin/env python
"""Line coverage for ``src/repro/core`` + ``src/repro/service`` (+ its
``cluster`` subpackage as a separately gated group), stdlib-only.

The container has no ``coverage`` package, so this is a small stdlib
tracer: executable lines come from ``dis.findlinestarts`` over every
(recursively nested) code object of each tracked module, hits come
from a ``sys.settrace`` hook active while a focused pytest subset runs
in-process.  ``threading.settrace`` installs the same hook in threads
started during the run, so the service's server/executor threads are
measured too.  Worker-*process* execution is not traced — the measured
number is coordinator-side coverage, which is what the guard cares
about (the ladder / fault paths all run on the coordinator).

Usage::

    python scripts/coverage_core.py --check            # enforce baseline
    python scripts/coverage_core.py --write-baseline   # refresh baseline
    python scripts/coverage_core.py                    # report only

``--check`` fails (exit 1) when the line coverage of a tracked group
drops more than ``TOLERANCE_PTS`` percentage points below the committed
baseline (``scripts/coverage_baseline.json``) — the "coverage may not
regress" gate of scripts/verify.sh.  The ``core`` group keeps its
original top-level baseline fields, so old baselines stay readable;
``service`` is gated through the baseline's ``"service"`` section.
"""

from __future__ import annotations

import dis
import json
import sys
import threading
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
BASELINE = REPO / "scripts" / "coverage_baseline.json"

#: Tracked source groups: group name -> directory of modules (scanned
#: recursively, so subpackages like ``core/_kernel`` are gated too).
GROUPS = {
    "core": REPO / "src" / "repro" / "core",
    "service": REPO / "src" / "repro" / "service",
    "cluster": REPO / "src" / "repro" / "service" / "cluster",
}

#: Allowed slack before --check fails, in percentage points.  Some core
#: branches (pool respawn timing, fallback paths) are exercised by
#: wall-clock-dependent tests, so exact equality would be flaky.
TOLERANCE_PTS = 1.0

#: The focused subset driving execution.  Kept explicit (not the whole
#: suite) so the traced run stays fast and deterministic.
COVERAGE_TESTS = [
    "tests/test_faults.py",
    "tests/test_gfunc.py",
    "tests/test_constraints.py",
    "tests/test_batched_oracle.py",
    "tests/test_spreading_metric.py",
    "tests/test_parallel_engine.py",
    "tests/test_native_kernel.py",
    "tests/test_flow_htp.py",
    "tests/test_construct.py",
    "tests/test_concurrent_flow.py",
    "tests/test_lp.py",
    "tests/test_separator.py",
    "tests/test_ratio_cut.py",
    "tests/test_invariant_properties.py",
    "tests/test_serialization.py",
    "tests/test_checkpoint.py",
    "tests/test_journal.py",
    "tests/test_service_jobs.py",
    "tests/test_service_cache.py",
    "tests/test_service_http.py",
    "tests/test_client_resets.py",
    "tests/test_cluster_units.py",
    "tests/test_cluster_router.py",
    "tests/test_cluster_replication.py",
    "tests/test_netfaults.py",
    "tests/chaos",
]


def executable_lines(path: Path) -> set:
    """Line numbers holding at least one bytecode instruction."""
    code = compile(path.read_text(), str(path), "exec")
    lines = set()
    stack = [code]
    while stack:
        obj = stack.pop()
        for _offset, line in dis.findlinestarts(obj):
            if line is not None:
                lines.add(line)
        for const in obj.co_consts:
            if hasattr(const, "co_code"):
                stack.append(const)
    return lines


def run_traced() -> dict:
    """Hits per tracked file after running the focused pytest subset.

    Returns ``{group: {filename: {"executable": n, "hit": n}}}``.
    """
    targets = {
        str(path): executable_lines(path)
        for directory in GROUPS.values()
        for path in sorted(directory.rglob("*.py"))
    }
    hits = {name: set() for name in targets}

    def line_tracer(frame, event, arg):
        if event == "line":
            hits[frame.f_code.co_filename].add(frame.f_lineno)
        return line_tracer

    def call_tracer(frame, event, arg):
        if frame.f_code.co_filename in targets:
            return line_tracer
        return None

    import pytest

    sys.settrace(call_tracer)
    threading.settrace(call_tracer)  # service server/executor threads
    try:
        exit_code = pytest.main(["-q", "-x", "--no-header", "-p", "no:cacheprovider"]
                                + COVERAGE_TESTS)
    finally:
        sys.settrace(None)
        threading.settrace(None)
    if exit_code != 0:
        print(f"coverage run failed: pytest exited {exit_code}", file=sys.stderr)
        raise SystemExit(1)

    def owner(name: str):
        """The most specific group containing ``name`` — so the nested
        ``cluster`` group claims its files away from ``service`` and the
        broader percentages stay comparable to their old baselines."""
        best, best_depth = None, -1
        for group, directory in GROUPS.items():
            if directory in Path(name).parents:
                depth = len(directory.parts)
                if depth > best_depth:
                    best, best_depth = group, depth
        return best

    return {
        group: {
            name: {
                "executable": len(lines),
                "hit": len(hits[name] & lines),
            }
            for name, lines in targets.items()
            if owner(name) == group
        }
        for group in GROUPS
    }


def summarise(per_file: dict) -> dict:
    executable = sum(entry["executable"] for entry in per_file.values())
    hit = sum(entry["hit"] for entry in per_file.values())
    return {
        "total_executable": executable,
        "total_hit": hit,
        "percent": round(100.0 * hit / executable, 2) if executable else 100.0,
        "files": {
            str(Path(name).relative_to(REPO)): round(
                100.0 * entry["hit"] / entry["executable"], 2
            )
            if entry["executable"]
            else 100.0
            for name, entry in per_file.items()
        },
    }


def _kernel_built() -> bool:
    """Whether the native extension is importable in this environment."""
    try:
        from repro.core import _kernel

        return _kernel.available()
    except Exception:  # pragma: no cover - defensive
        return False


def _baseline_percent(baseline: dict, group: str):
    """The committed percent for ``group`` (core lives at top level)."""
    if group == "core":
        return baseline.get("percent")
    section = baseline.get(group)
    return section.get("percent") if isinstance(section, dict) else None


def main(argv) -> int:
    write = "--write-baseline" in argv
    check = "--check" in argv
    summaries = {
        group: summarise(per_file)
        for group, per_file in run_traced().items()
    }
    for group, summary in summaries.items():
        print(f"\nrepro.{group} line coverage: {summary['percent']}% "
              f"({summary['total_hit']}/{summary['total_executable']} lines)")
        for name, pct in sorted(summary["files"].items()):
            print(f"  {pct:6.2f}%  {name}")

    if write:
        # The core group keeps the original top-level layout; other
        # groups are nested sections.
        doc = dict(summaries["core"])
        for group, summary in summaries.items():
            if group != "core":
                doc[group] = summary
        doc["native_kernel_built"] = _kernel_built()
        BASELINE.write_text(json.dumps(doc, indent=2) + "\n")
        print(f"baseline written to {BASELINE.relative_to(REPO)}")
        return 0
    if check:
        if not BASELINE.is_file():
            print("no coverage baseline committed; run --write-baseline",
                  file=sys.stderr)
            return 1
        baseline = json.loads(BASELINE.read_text())
        built = _kernel_built()
        committed_built = baseline.get("native_kernel_built")
        if committed_built is not None and committed_built != built:
            # Kernel-gated lines (the native engine rounds, the worker
            # kernels, the wrapper class) are unreachable without the
            # extension, so percentages are not comparable across the
            # two environments.  Report, but do not fail the gate.
            print(
                "note: baseline was measured with native kernel "
                f"{'built' if committed_built else 'absent'} but it is "
                f"{'built' if built else 'absent'} here; coverage gate "
                "is informational only in this environment"
            )
            return 0
        failed = False
        for group, summary in summaries.items():
            committed = _baseline_percent(baseline, group)
            if committed is None:
                print(f"note: no {group} baseline committed; skipping "
                      f"(run --write-baseline to gate it)")
                continue
            floor = committed - TOLERANCE_PTS
            if summary["percent"] < floor:
                print(
                    f"FAIL: {group} coverage {summary['percent']}% dropped "
                    f"below baseline {committed}% - {TOLERANCE_PTS} pt "
                    f"tolerance (floor {floor:.2f}%)",
                    file=sys.stderr,
                )
                failed = True
            else:
                print(
                    f"{group} coverage OK (baseline {committed}%, floor "
                    f"{floor:.2f}%)"
                )
        return 1 if failed else 0
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
