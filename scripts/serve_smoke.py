#!/usr/bin/env python
"""End-to-end smoke of ``htp serve`` / ``htp submit`` as real processes.

What a packaged install would do, minus nothing: spawn the server CLI
on an ephemeral port, drive it with two ``htp submit`` subprocesses
(cold run, then a warm cache hit that must report the identical cost),
then SIGTERM the server and verify it announces a clean drain.

A second phase drills durability: a journaled server is SIGKILLed —
no drain, no goodbye — after finishing one submission, restarted over
the same journal/cache directories, and must re-serve the same content
address with the bit-identical cost without re-running the solver.
Exits non-zero with a diagnostic on the first deviation.

Usage::

    PYTHONPATH=src python scripts/serve_smoke.py    (or: make serve-smoke)
"""

from __future__ import annotations

import os
import re
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
TIMEOUT = 120  # generous wall-clock budget for the whole smoke


def fail(message: str, *details: str) -> None:
    print(f"serve-smoke FAIL: {message}", file=sys.stderr)
    for detail in details:
        print(f"  {detail}", file=sys.stderr)
    raise SystemExit(1)


def run_cli(*args: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, "-m", "repro.cli", *args],
        capture_output=True,
        text=True,
        timeout=TIMEOUT,
        cwd=REPO,
    )


def spawn_server(*args: str) -> subprocess.Popen:
    return subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve", "--port", "0", *args],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        cwd=REPO,
    )


def server_url(server: subprocess.Popen) -> str:
    # The announcement may be preceded by startup chatter (e.g. the
    # journal-recovery summary on a restart).
    seen = []
    for _ in range(10):
        line = server.stdout.readline()
        if not line:
            break
        seen.append(line)
        match = re.search(r"serving on (http://\S+)", line)
        if match:
            return match.group(1)
    fail("server did not announce its URL", f"got: {seen!r}")


def kill9_restart_phase(tmp: str, netlist: Path) -> None:
    """Submit, SIGKILL the server, restart, demand the same bits back."""
    wal = Path(tmp) / "wal"
    cache = Path(tmp) / "cache9"
    ckpt = Path(tmp) / "ckpt"
    durable = (
        "--journal", str(wal), "--cache-dir", str(cache),
        "--checkpoint-dir", str(ckpt),
    )

    server = spawn_server(*durable)
    try:
        url = server_url(server)
        submit = ("submit", str(netlist), "--url", url,
                  "--height", "2", "--iterations", "1")
        first = run_cli(*submit)
        if first.returncode != 0:
            fail("submit before the kill failed", first.stdout, first.stderr)
        server.send_signal(signal.SIGKILL)
        server.wait(timeout=TIMEOUT)
    finally:
        if server.poll() is None:
            server.kill()

    server = spawn_server(*durable)
    try:
        url = server_url(server)
        again = run_cli("submit", str(netlist), "--url", url,
                        "--height", "2", "--iterations", "1")
        if again.returncode != 0 or "warm (cache hit)" not in again.stdout:
            fail("restarted server did not re-serve from cache",
                 again.stdout, again.stderr)

        cost = lambda out: re.search(r"FLOW cost: (\S+)", out).group(1)
        if cost(first.stdout) != cost(again.stdout):
            fail("post-restart cost differs from pre-kill cost",
                 first.stdout, again.stdout)
        if not (wal / "journal.jsonl").is_file():
            fail("journal file was never written")

        server.send_signal(signal.SIGTERM)
        output, _ = server.communicate(timeout=TIMEOUT)
        if server.returncode != 0:
            fail(f"restarted server exited {server.returncode}", output)
    finally:
        if server.poll() is None:
            server.kill()


def main() -> int:
    os.environ.setdefault("PYTHONPATH", str(REPO / "src"))

    with tempfile.TemporaryDirectory(prefix="serve-smoke-") as tmp:
        netlist = Path(tmp) / "smoke.hgr"
        generated = run_cli(
            "generate", str(netlist), "--nodes", "64", "--seed", "0"
        )
        if generated.returncode != 0:
            fail("htp generate failed", generated.stderr)

        server = subprocess.Popen(
            [
                sys.executable, "-m", "repro.cli", "serve",
                "--port", "0",
                "--cache-dir", str(Path(tmp) / "cache"),
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            cwd=REPO,
        )
        try:
            line = server.stdout.readline()
            match = re.search(r"serving on (http://\S+)", line)
            if not match:
                fail("server did not announce its URL", f"got: {line!r}")
            url = match.group(1)

            submit = ("submit", str(netlist), "--url", url,
                      "--height", "2", "--iterations", "1")
            cold = run_cli(*submit)
            if cold.returncode != 0 or "cold" not in cold.stdout:
                fail("cold submit failed", cold.stdout, cold.stderr)
            warm = run_cli(*submit)
            if warm.returncode != 0 or "warm (cache hit)" not in warm.stdout:
                fail("warm submit was not a cache hit",
                     warm.stdout, warm.stderr)

            cost = lambda out: re.search(r"FLOW cost: (\S+)", out).group(1)
            if cost(cold.stdout) != cost(warm.stdout):
                fail("warm cost differs from cold cost",
                     cold.stdout, warm.stdout)

            server.send_signal(signal.SIGTERM)
            try:
                output, _ = server.communicate(timeout=TIMEOUT)
            except subprocess.TimeoutExpired:
                server.kill()
                fail("server did not exit after SIGTERM")
            if server.returncode != 0:
                fail(f"server exited {server.returncode}", output)
            drained = re.search(r"drained: (.*)", output)
            if not drained:
                fail("server did not report a drain", output)
            counts = dict(
                part.split("=") for part in drained.group(1).split()
            )
            if counts.get("done") != "2" or counts.get("failed") != "0":
                fail("unexpected drain counts", drained.group(0))
        finally:
            if server.poll() is None:
                server.kill()

        kill9_restart_phase(tmp, netlist)

    print(
        "serve-smoke OK: cold solve + warm cache hit + graceful drain"
        " + kill-9 restart re-served from cache"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
