#!/usr/bin/env python
"""End-to-end smoke of the cluster tier as real processes.

Two drills, selected with ``--drill`` (default ``base``):

``base``
    Spawns an ``htp route`` router and two ``htp serve --join`` workers
    (each its own interpreter with PRIVATE cache/checkpoint
    directories), then drills both promises the cluster makes:

    1. The CLI path: ``htp submit --router`` lands a job on a worker and
       prints its placement; resubmitting is answered from the router's
       shared cache with the identical cost and no second placement.
    2. The failover path: a slow job is submitted, checkpoint frames
       replicate to the peer over HTTP, the worker that owns the job is
       SIGKILLed mid-solve, and the router must reroute it to the
       survivor, which resumes from the *replicated* frames — the
       served result must be bit-identical to an undisturbed local
       solve of the same spec.

``partition``
    Puts the primary router behind the :mod:`repro.testing.netfaults`
    TCP proxy with a warm standby tailing its WAL, severs the link
    mid-flight, and requires: the standby takes over (bumped fencing
    epoch), a job submitted to the standby finishes bit-identically,
    and the still-running zombie primary's forwards are refused by the
    epoch-fenced worker.

``all`` runs both.  Exits non-zero with a diagnostic on the first
deviation.

Usage::

    PYTHONPATH=src python scripts/cluster_smoke.py [--drill base|partition|all]
    (or: make cluster-smoke / make cluster-partition-smoke)
"""

from __future__ import annotations

import argparse
import os
import re
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.core.faults import FaultTolerance  # noqa: E402
from repro.htp.hierarchy import binary_hierarchy  # noqa: E402
from repro.hypergraph.generators import (  # noqa: E402
    planted_hierarchy_hypergraph,
)
from repro.service import (  # noqa: E402
    JobSpec,
    ServiceClient,
    ServiceClientError,
    run_spec,
)
from repro.testing import FaultProxy, NetFaultPlan  # noqa: E402

TIMEOUT = 240  # generous wall-clock budget for one whole drill


def fail(message: str, *details: str) -> None:
    print(f"cluster-smoke FAIL: {message}", file=sys.stderr)
    for detail in details:
        print(f"  {detail}", file=sys.stderr)
    raise SystemExit(1)


def run_cli(*args: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, "-m", "repro.cli", *args],
        capture_output=True,
        text=True,
        timeout=TIMEOUT,
        cwd=REPO,
    )


def spawn(*args: str) -> subprocess.Popen:
    return subprocess.Popen(
        [sys.executable, "-m", "repro.cli", *args],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        cwd=REPO,
    )


def announced_url(process: subprocess.Popen, verb: str) -> str:
    seen = []
    for _ in range(10):
        line = process.stdout.readline()
        if not line:
            break
        seen.append(line)
        match = re.search(rf"{verb} on (http://\S+)", line)
        if match:
            return match.group(1)
    fail(f"process never announced '{verb} on'", f"got: {seen!r}")


def tolerant_client(url: str) -> ServiceClient:
    return ServiceClient(
        url,
        timeout=30,
        tolerance=FaultTolerance(task_retries=3, backoff_base=0.05),
    )


def wait_alive(client: ServiceClient, count: int, timeout: float = 60.0):
    deadline = time.monotonic() + timeout
    docs = []
    while time.monotonic() < deadline:
        try:
            docs = client._request("GET", "/workers")["workers"]
        except ServiceClientError:
            docs = []
        if sum(1 for d in docs if d["state"] == "alive") >= count:
            return
        time.sleep(0.1)
    fail(f"never saw {count} alive workers", f"workers: {docs!r}")


def wait_role(client: ServiceClient, role: str, timeout: float = 60.0):
    deadline = time.monotonic() + timeout
    seen = None
    while time.monotonic() < deadline:
        try:
            seen = client.healthz().get("role")
        except ServiceClientError:
            seen = None
        if seen == role:
            return
        time.sleep(0.1)
    fail(f"never saw role {role!r}", f"last seen: {seen!r}")


def wait_done(client: ServiceClient, job_id: str, timeout: float = TIMEOUT):
    """Poll to terminal, tolerating 503s while a standby warms up."""
    deadline = time.monotonic() + timeout
    status = None
    while time.monotonic() < deadline:
        try:
            status = client.status(job_id)
        except ServiceClientError:
            time.sleep(0.2)
            continue
        if status["state"] in ("done", "failed", "cancelled"):
            return status
        time.sleep(0.1)
    fail(f"job {job_id} never reached a terminal state", f"last: {status!r}")


def spawn_worker(worker_id: str, router_url: str, tmp: str):
    # PRIVATE scratch per worker: resumability must come from checkpoint
    # replication over HTTP, not from a shared directory.
    return spawn(
        "serve", "--port", "0",
        "--max-concurrency", "1",
        "--join", router_url,
        "--worker-id", worker_id,
        "--cache-dir", str(Path(tmp) / f"cache-{worker_id}"),
        "--checkpoint-dir", str(Path(tmp) / f"ckpt-{worker_id}"),
    )


def slow_spec() -> JobSpec:
    # Slow enough (seconds) for a kill or a partition to land mid-solve
    # and for the heartbeat-cadence replication to ship frames first.
    netlist = planted_hierarchy_hypergraph(384, height=2, seed=2)
    hierarchy = binary_hierarchy(netlist.total_size(), height=2)
    return JobSpec.from_parts(
        netlist,
        hierarchy,
        {
            "iterations": 2,
            "constructions_per_metric": 2,
            "engine": "python",
            "max_rounds": 32,
            "delta": 0.3,
            "seed": 7,
        },
    )


def semantic(doc):
    return {
        k: v for k, v in doc.items() if k not in ("runtime_seconds", "perf")
    }


def drill_base(tmp: str) -> None:
    netlist = Path(tmp) / "smoke.hgr"
    generated = run_cli(
        "generate", str(netlist), "--nodes", "64", "--seed", "0"
    )
    if generated.returncode != 0:
        fail("htp generate failed", generated.stderr)

    processes = []
    workers = {}
    try:
        router = spawn(
            "route", "--port", "0",
            "--journal", str(Path(tmp) / "router-wal"),
            "--heartbeat-interval", "0.5",
        )
        processes.append(router)
        router_url = announced_url(router, "routing")
        client = tolerant_client(router_url)

        for worker_id in ("w0", "w1"):
            worker = spawn_worker(worker_id, router_url, tmp)
            processes.append(worker)
            workers[worker_id] = worker
        wait_alive(client, 2)

        # Phase 1: the CLI path — placement, then a shared-cache hit.
        submit = ("submit", str(netlist), "--router", router_url,
                  "--height", "2", "--iterations", "1")
        cold = run_cli(*submit)
        if cold.returncode != 0 or "cold" not in cold.stdout:
            fail("cold submit via router failed",
                 cold.stdout, cold.stderr)
        placed = re.search(r"worker ([\w-]+)", cold.stdout)
        if not placed or placed.group(1) not in workers:
            fail("cold submit did not report a worker placement",
                 cold.stdout)
        warm = run_cli(*submit)
        if warm.returncode != 0 or "warm (cache hit)" not in warm.stdout:
            fail("warm submit was not a router cache hit",
                 warm.stdout, warm.stderr)
        cost = lambda out: re.search(r"FLOW cost: (\S+)", out).group(1)
        if cost(cold.stdout) != cost(warm.stdout):
            fail("warm cost differs from cold cost",
                 cold.stdout, warm.stdout)

        # Phase 2: kill the worker that owns a slow job mid-solve.
        spec = slow_spec()
        submitted = client.submit_spec(spec)
        victim = submitted["worker"]
        if victim not in workers:
            fail(f"slow job placed on unknown worker {victim!r}")
        survivor = ({"w0", "w1"} - {victim}).pop()

        # Kill gate: the victim journaled progress AND the survivor's
        # PRIVATE checkpoint root holds a replicated copy to resume from.
        spec_hash = submitted["spec_hash"]
        victim_ckpt = Path(tmp) / f"ckpt-{victim}" / spec_hash
        survivor_ckpt = Path(tmp) / f"ckpt-{survivor}" / spec_hash
        kill_deadline = time.monotonic() + 60
        while not (
            list(victim_ckpt.glob("ckpt-*.json"))
            and list(survivor_ckpt.glob("ckpt-*.json"))
        ):
            if time.monotonic() > kill_deadline:
                fail("no replicated checkpoint before the kill window")
            status = client.status(submitted["job_id"])
            if status["state"] not in ("queued", "running"):
                fail(f"slow job finished too fast to kill: "
                     f"{status['state']}")
            time.sleep(0.02)

        workers[victim].kill()
        workers[victim].wait(timeout=30)

        finished = client.wait(submitted["job_id"], timeout=TIMEOUT)
        if finished["state"] != "done":
            fail(f"rerouted job ended {finished['state']}",
                 str(finished.get("error")))
        if finished["worker"] == victim or finished["reroutes"] < 1:
            fail("job did not reroute off the killed worker",
                 str(finished))

        served = client.result(submitted["job_id"])
        reference = run_spec(spec).to_dict()
        if semantic(served["result"]) != semantic(reference):
            fail("rerouted result differs from an undisturbed solve")

        metrics = client.metricsz()
        if metrics["cluster"]["reroutes"] < 1:
            fail("router metrics reported no reroute",
                 str(metrics["cluster"]))
    finally:
        for process in processes:
            if process.poll() is None:
                process.kill()
                process.wait(timeout=30)

    print(
        "cluster-smoke OK: routed cold solve + shared-cache warm hit"
        " + mid-solve worker kill resumed from replicated checkpoints"
        " to a bit-identical finish"
    )


def drill_partition(tmp: str) -> None:
    processes = []
    proxy = None
    try:
        primary = spawn(
            "route", "--port", "0",
            "--journal", str(Path(tmp) / "wal-primary"),
            "--heartbeat-interval", "0.5",
        )
        processes.append(primary)
        primary_url = announced_url(primary, "routing")
        primary_port = int(primary_url.rsplit(":", 1)[1])
        zombie_client = tolerant_client(primary_url)

        # Everyone reaches the primary THROUGH the proxy so one
        # partition cuts worker, standby and client off at once; the
        # zombie keeps its direct port for the fencing probe below.
        proxy = FaultProxy(
            "127.0.0.1", primary_port, link="cluster->primary"
        ).start()
        proxied_client = tolerant_client(proxy.url)

        standby = spawn(
            "route", "--port", "0",
            "--journal", str(Path(tmp) / "wal-standby"),
            "--heartbeat-interval", "0.5",
            "--standby", proxy.url,
            "--epoch-timeout", "2.0",
        )
        processes.append(standby)
        standby_url = announced_url(standby, "standing by for .*")
        standby_client = tolerant_client(standby_url)
        wait_role(standby_client, "standby")

        worker = spawn_worker("w0", proxy.url, tmp)
        processes.append(worker)
        wait_alive(proxied_client, 1)

        deadline = time.monotonic() + 30
        while (
            proxied_client.metricsz()["cluster"]["standby"] != standby_url
        ):
            if time.monotonic() > deadline:
                fail("standby never announced itself to the primary")
            time.sleep(0.1)
        time.sleep(1.5)  # one heartbeat so the worker hears it too

        # Sever the link.
        proxy.plan = NetFaultPlan.parse("partition:cluster->primary")

        wait_role(standby_client, "router")
        if not proxy.injected:
            fail("the partition never bit live traffic")
        wait_alive(standby_client, 1)

        # The cluster works under new management, bit-identically...
        spec = slow_spec()
        submitted = standby_client.submit_spec(spec)
        finished = wait_done(standby_client, submitted["job_id"])
        if finished["state"] != "done":
            fail(f"post-takeover job ended {finished['state']}",
                 str(finished.get("error")))
        served = standby_client.result(submitted["job_id"])
        if semantic(served["result"]) != semantic(run_spec(spec).to_dict()):
            fail("post-takeover result differs from an undisturbed solve")
        cluster = standby_client.metricsz()["cluster"]
        if cluster["epoch"] < 2 or cluster["epoch_bumps"] < 1:
            fail("standby did not bump the fencing epoch", str(cluster))

        # ...and the zombie primary's forwards are refused.
        netlist = planted_hierarchy_hypergraph(32, height=2, seed=5)
        other = JobSpec.from_parts(
            netlist,
            binary_hierarchy(netlist.total_size(), height=2),
            {"iterations": 1, "engine": "python", "seed": 5},
        )
        try:
            zombie_client.submit_spec(other)
        except ServiceClientError as exc:
            if "stale router epoch" not in str(exc):
                fail("zombie submit failed for the wrong reason", str(exc))
        else:
            fail("the fenced zombie primary still placed a job")
    finally:
        if proxy is not None:
            proxy.stop()
        for process in processes:
            if process.poll() is None:
                process.kill()
                process.wait(timeout=30)

    print(
        "cluster-smoke OK: partition -> standby takeover with epoch bump,"
        " bit-identical post-takeover solve, zombie primary fenced"
    )


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--drill", choices=("base", "partition", "all"), default="base"
    )
    args = parser.parse_args()
    os.environ.setdefault("PYTHONPATH", str(REPO / "src"))

    drills = {
        "base": (drill_base,),
        "partition": (drill_partition,),
        "all": (drill_base, drill_partition),
    }[args.drill]
    for drill in drills:
        with tempfile.TemporaryDirectory(prefix="cluster-smoke-") as tmp:
            drill(tmp)
    return 0


if __name__ == "__main__":
    sys.exit(main())
