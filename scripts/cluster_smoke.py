#!/usr/bin/env python
"""End-to-end smoke of the cluster tier as real processes.

Spawns an ``htp route`` router and two ``htp serve --join`` workers
(each its own interpreter, sharing a checkpoint directory), then
drills both promises the cluster makes:

1. The CLI path: ``htp submit --router`` lands a job on a worker and
   prints its placement; resubmitting is answered from the router's
   shared cache with the identical cost and no second placement.
2. The failover path: a slow job is submitted, the worker that owns
   it is SIGKILLed mid-solve, and the router must reroute it to the
   survivor, which resumes from the victim's newest checkpoint — the
   served result must be bit-identical to an undisturbed local solve
   of the same spec.

Exits non-zero with a diagnostic on the first deviation.

Usage::

    PYTHONPATH=src python scripts/cluster_smoke.py   (or: make cluster-smoke)
"""

from __future__ import annotations

import os
import re
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.core.faults import FaultTolerance  # noqa: E402
from repro.htp.hierarchy import binary_hierarchy  # noqa: E402
from repro.hypergraph.generators import (  # noqa: E402
    planted_hierarchy_hypergraph,
)
from repro.service import (  # noqa: E402
    JobSpec,
    ServiceClient,
    ServiceClientError,
    run_spec,
)

TIMEOUT = 240  # generous wall-clock budget for the whole smoke


def fail(message: str, *details: str) -> None:
    print(f"cluster-smoke FAIL: {message}", file=sys.stderr)
    for detail in details:
        print(f"  {detail}", file=sys.stderr)
    raise SystemExit(1)


def run_cli(*args: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, "-m", "repro.cli", *args],
        capture_output=True,
        text=True,
        timeout=TIMEOUT,
        cwd=REPO,
    )


def spawn(*args: str) -> subprocess.Popen:
    return subprocess.Popen(
        [sys.executable, "-m", "repro.cli", *args],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        cwd=REPO,
    )


def announced_url(process: subprocess.Popen, verb: str) -> str:
    seen = []
    for _ in range(10):
        line = process.stdout.readline()
        if not line:
            break
        seen.append(line)
        match = re.search(rf"{verb} on (http://\S+)", line)
        if match:
            return match.group(1)
    fail(f"process never announced '{verb} on'", f"got: {seen!r}")


def wait_alive(client: ServiceClient, count: int, timeout: float = 30.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        try:
            docs = client._request("GET", "/workers")["workers"]
        except ServiceClientError:
            docs = []
        if sum(1 for d in docs if d["state"] == "alive") >= count:
            return
        time.sleep(0.1)
    fail(f"never saw {count} alive workers", f"workers: {docs!r}")


def slow_spec() -> JobSpec:
    netlist = planted_hierarchy_hypergraph(64, height=2, seed=2)
    hierarchy = binary_hierarchy(netlist.total_size(), height=2)
    return JobSpec.from_parts(
        netlist,
        hierarchy,
        {
            "iterations": 2,
            "constructions_per_metric": 2,
            "engine": "python",
            "max_rounds": 32,
            "delta": 0.3,
            "seed": 7,
        },
    )


def main() -> int:
    os.environ.setdefault("PYTHONPATH", str(REPO / "src"))

    with tempfile.TemporaryDirectory(prefix="cluster-smoke-") as tmp:
        netlist = Path(tmp) / "smoke.hgr"
        generated = run_cli(
            "generate", str(netlist), "--nodes", "64", "--seed", "0"
        )
        if generated.returncode != 0:
            fail("htp generate failed", generated.stderr)

        processes = []
        workers = {}
        try:
            router = spawn(
                "route", "--port", "0",
                "--journal", str(Path(tmp) / "router-wal"),
                "--heartbeat-interval", "0.5",
            )
            processes.append(router)
            router_url = announced_url(router, "routing")
            client = ServiceClient(
                router_url,
                timeout=30,
                tolerance=FaultTolerance(task_retries=3, backoff_base=0.05),
            )

            for worker_id in ("w0", "w1"):
                worker = spawn(
                    "serve", "--port", "0",
                    "--max-concurrency", "1",
                    "--join", router_url,
                    "--worker-id", worker_id,
                    "--cache-dir", str(Path(tmp) / f"cache-{worker_id}"),
                    "--checkpoint-dir", str(Path(tmp) / "ckpt"),
                )
                processes.append(worker)
                workers[worker_id] = worker
            wait_alive(client, 2)

            # Phase 1: the CLI path — placement, then a shared-cache hit.
            submit = ("submit", str(netlist), "--router", router_url,
                      "--height", "2", "--iterations", "1")
            cold = run_cli(*submit)
            if cold.returncode != 0 or "cold" not in cold.stdout:
                fail("cold submit via router failed",
                     cold.stdout, cold.stderr)
            placed = re.search(r"worker ([\w-]+)", cold.stdout)
            if not placed or placed.group(1) not in workers:
                fail("cold submit did not report a worker placement",
                     cold.stdout)
            warm = run_cli(*submit)
            if warm.returncode != 0 or "warm (cache hit)" not in warm.stdout:
                fail("warm submit was not a router cache hit",
                     warm.stdout, warm.stderr)
            cost = lambda out: re.search(r"FLOW cost: (\S+)", out).group(1)
            if cost(cold.stdout) != cost(warm.stdout):
                fail("warm cost differs from cold cost",
                     cold.stdout, warm.stdout)

            # Phase 2: kill the worker that owns a slow job mid-solve.
            spec = slow_spec()
            submitted = client.submit_spec(spec)
            victim = submitted["worker"]
            if victim not in workers:
                fail(f"slow job placed on unknown worker {victim!r}")

            ckpt_dir = Path(tmp) / "ckpt" / submitted["spec_hash"]
            kill_deadline = time.monotonic() + 60
            while not list(ckpt_dir.glob("ckpt-*.json")):
                if time.monotonic() > kill_deadline:
                    fail("no checkpoint appeared before the kill window")
                status = client.status(submitted["job_id"])
                if status["state"] not in ("queued", "running"):
                    fail(f"slow job finished too fast to kill: "
                         f"{status['state']}")
                time.sleep(0.02)

            workers[victim].kill()
            workers[victim].wait(timeout=30)

            finished = client.wait(submitted["job_id"], timeout=TIMEOUT)
            if finished["state"] != "done":
                fail(f"rerouted job ended {finished['state']}",
                     str(finished.get("error")))
            if finished["worker"] == victim or finished["reroutes"] < 1:
                fail("job did not reroute off the killed worker",
                     str(finished))

            served = client.result(submitted["job_id"])
            reference = run_spec(spec).to_dict()
            semantic = lambda doc: {
                k: v for k, v in doc.items()
                if k not in ("runtime_seconds", "perf")
            }
            if semantic(served["result"]) != semantic(reference):
                fail("rerouted result differs from an undisturbed solve")

            metrics = client.metricsz()
            if metrics["cluster"]["reroutes"] < 1:
                fail("router metrics reported no reroute",
                     str(metrics["cluster"]))
        finally:
            for process in processes:
                if process.poll() is None:
                    process.kill()
                    process.wait(timeout=30)

    print(
        "cluster-smoke OK: routed cold solve + shared-cache warm hit"
        " + mid-solve worker kill rerouted to a bit-identical finish"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
