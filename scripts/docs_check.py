#!/usr/bin/env python
"""Keep the documentation honest.

Four checks over ``README.md``, ``DESIGN.md``, ``EXPERIMENTS.md`` and
``docs/*.md``:

1. **Snippets run.**  Every ```` ```python ```` fence containing ``>>>``
   is executed as a doctest (with ``src`` on ``sys.path``); fences
   without ``>>>`` must at least compile.
2. **Links resolve.**  Every intra-repo markdown link target must exist
   on disk (http/https/mailto and pure-anchor links are skipped; anchor
   suffixes are stripped before the existence check).
3. **The benchmark table is complete.**  Every ``benchmarks/bench_*.py``
   file must be mentioned in ``docs/benchmarks.md``.
4. **Required sections exist.**  Load-bearing headings other parts of
   the repo point at (the engine matrix, the engines contract) must be
   present, so a doc refactor cannot silently drop them.

Exit status 0 when all checks pass; 1 with a per-failure listing
otherwise.  Wired into ``make docs-check`` and ``scripts/verify.sh``.
"""

from __future__ import annotations

import doctest
import io
import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

DOC_FILES = ["README.md", "DESIGN.md", "EXPERIMENTS.md"] + sorted(
    str(p.relative_to(REPO)) for p in (REPO / "docs").glob("*.md")
)

#: Headings that must exist verbatim (as a markdown heading line) —
#: docstrings, tests and other docs reference these by name.
REQUIRED_SECTIONS = {
    "docs/benchmarks.md": [
        "## Engine matrix",
        "## Scaling",
        "## Optimality gap",
    ],
    "docs/architecture.md": ["## Engines"],
    "docs/cluster.md": [
        "## Topology",
        "## Placement policies",
        "## Failover walkthrough",
        "## Replication",
        "## Router failover",
        "## Knob reference",
    ],
    "docs/multilevel.md": [
        "## The V-cycle",
        "## Coarsening invariants",
        "## Corridor refinement",
        "## Knob reference",
    ],
}

_FENCE = re.compile(r"```python\n(.*?)```", re.DOTALL)
# [text](target) — ignore images' leading ! by matching the bracket pair
# itself; nested parens inside targets do not occur in this repo's docs.
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def _check_snippets(path: Path, text: str, failures: list) -> int:
    checked = 0
    for i, match in enumerate(_FENCE.finditer(text), start=1):
        code = match.group(1)
        checked += 1
        label = f"{path.relative_to(REPO)} fence {i}"
        if ">>>" in code:
            parser = doctest.DocTestParser()
            try:
                test = parser.get_doctest(code, {}, label, str(path), 0)
            except ValueError as exc:
                failures.append(f"{label}: doctest parse error: {exc}")
                continue
            out = io.StringIO()
            runner = doctest.DocTestRunner(
                verbose=False, optionflags=doctest.ELLIPSIS
            )
            results = runner.run(test, out=out.write)
            if results.failed:
                failures.append(
                    f"{label}: {results.failed} doctest failure(s)\n"
                    + out.getvalue()
                )
        else:
            try:
                compile(code, label, "exec")
            except SyntaxError as exc:
                failures.append(f"{label}: does not compile: {exc}")
    return checked


def _check_links(path: Path, text: str, failures: list) -> int:
    checked = 0
    for match in _LINK.finditer(text):
        target = match.group(1)
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        checked += 1
        bare = target.split("#", 1)[0]
        resolved = (path.parent / bare).resolve()
        if not resolved.exists():
            failures.append(
                f"{path.relative_to(REPO)}: dead link -> {target}"
            )
    return checked


def _check_benchmark_table(failures: list) -> int:
    doc = (REPO / "docs" / "benchmarks.md").read_text()
    bench_files = sorted(
        p.name for p in (REPO / "benchmarks").glob("bench_*.py")
    )
    for name in bench_files:
        if name not in doc:
            failures.append(
                f"docs/benchmarks.md: missing entry for benchmarks/{name}"
            )
    return len(bench_files)


def _check_required_sections(failures: list) -> int:
    checked = 0
    for rel, headings in REQUIRED_SECTIONS.items():
        path = REPO / rel
        text = path.read_text() if path.exists() else ""
        for heading in headings:
            checked += 1
            if not re.search(rf"(?m)^{re.escape(heading)}\s*$", text):
                failures.append(
                    f"{rel}: missing required section {heading!r}"
                )
    return checked


def main() -> int:
    failures: list = []
    snippets = links = 0
    for rel in DOC_FILES:
        path = REPO / rel
        if not path.exists():
            failures.append(f"{rel}: listed doc file does not exist")
            continue
        text = path.read_text()
        snippets += _check_snippets(path, text, failures)
        links += _check_links(path, text, failures)
    benches = _check_benchmark_table(failures)
    sections = _check_required_sections(failures)

    if failures:
        print(f"docs-check: {len(failures)} failure(s)")
        for failure in failures:
            print(" -", failure)
        return 1
    print(
        f"docs-check OK: {snippets} snippets, {links} links, "
        f"{benches} benchmark files and {sections} required sections "
        f"covered across {len(DOC_FILES)} docs"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
