"""Ablation: hierarchy shape (tree height) and balance slack.

The paper fixes the experimental hierarchy to a full binary tree of
height 4; the HTP formulation itself asks for the *best* hierarchy.
This bench sweeps tree heights (via :func:`search_hierarchies`) and
balance slacks, recording how the FLOW/RFM costs respond.
"""

import pytest
from conftest import emit

from repro.analysis.tables import Table
from repro.core.flow_htp import FlowHTPConfig, flow_htp
from repro.core.spreading_metric import SpreadingMetricConfig
from repro.htp.hierarchy import binary_hierarchy
from repro.htp.hierarchy_search import search_hierarchies
from repro.hypergraph.generators import iscas85_surrogate

_height_results = {}
_slack_results = {}


@pytest.fixture(scope="module")
def netlist(experiment_config):
    return iscas85_surrogate("c1355", scale=experiment_config.scale)


def test_height_sweep(benchmark, netlist, results_dir):
    candidates = benchmark.pedantic(
        search_hierarchies,
        args=(netlist,),
        kwargs={"heights": (2, 3, 4, 5), "seed": 0},
        rounds=1,
        iterations=1,
    )
    for candidate in candidates:
        _height_results[candidate.height] = (
            candidate.cost,
            candidate.valid,
        )
    table = Table(
        title="ABLATION - hierarchy height sweep on c1355 (RFM cost)",
        headers=["height", "leaves", "cost", "valid"],
    )
    for height in sorted(_height_results):
        cost, valid = _height_results[height]
        table.add_row(height, 2**height, cost, str(valid))
    emit(results_dir, "ablation_height.txt", table.render())
    assert all(valid for _cost, valid in _height_results.values())


@pytest.mark.parametrize("slack", [0.05, 0.10, 0.25])
def test_slack_sweep(benchmark, netlist, slack):
    spec = binary_hierarchy(netlist.total_size(), height=4, slack=slack)
    config = FlowHTPConfig(
        iterations=1,
        constructions_per_metric=4,
        seed=1,
        metric=SpreadingMetricConfig(
            alpha=0.3, delta=0.03, epsilon=0.1, max_rounds=1000
        ),
    )
    result = benchmark.pedantic(
        flow_htp, args=(netlist, spec), kwargs={"config": config},
        rounds=1, iterations=1,
    )
    _slack_results[slack] = result.cost


def test_slack_report(benchmark, results_dir):
    table = Table(
        title="ABLATION - balance slack on c1355 (FLOW cost)",
        headers=["slack", "FLOW cost"],
    )
    for slack in sorted(_slack_results):
        table.add_row(slack, _slack_results[slack])
    rendered = benchmark.pedantic(table.render, rounds=1, iterations=1)
    emit(results_dir, "ablation_slack.txt", rendered)
