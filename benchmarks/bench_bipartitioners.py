"""Bipartitioner shoot-out: every min-cut engine in the library.

One balanced bipartition task (c1355 surrogate, 45..55% window), solved
by FM (random and BFS init), KL, spectral sweep, flow-based FBB, and the
modern multilevel V-cycle.  Context for DESIGN.md's baseline-strength
discussion and for the novelty band's hMETIS/KaHyPar comparison.
"""

import math
import random

import pytest
from conftest import emit

from repro.analysis.tables import Table
from repro.hypergraph.generators import iscas85_surrogate
from repro.partitioning.fbb import fbb_bipartition
from repro.partitioning.fm import FMConfig, fm_bipartition
from repro.partitioning.kl import kl_bipartition
from repro.partitioning.multilevel import MultilevelConfig, multilevel_bipartition
from repro.partitioning.spectral import spectral_bipartition

_results = {}


@pytest.fixture(scope="module")
def task(experiment_config):
    netlist = iscas85_surrogate("c1355", scale=experiment_config.scale)
    n = netlist.total_size()
    return netlist, math.floor(0.45 * n), math.ceil(0.55 * n)


def test_fm_random(benchmark, task):
    netlist, lower, upper = task
    _sides, cut = benchmark.pedantic(
        fm_bipartition,
        args=(netlist, lower, upper),
        kwargs={"rng": random.Random(0), "config": FMConfig(init="random")},
        rounds=1,
        iterations=1,
    )
    _results["FM (random init)"] = cut


def test_fm_bfs(benchmark, task):
    netlist, lower, upper = task
    _sides, cut = benchmark.pedantic(
        fm_bipartition,
        args=(netlist, lower, upper),
        kwargs={"rng": random.Random(0), "config": FMConfig(init="bfs")},
        rounds=1,
        iterations=1,
    )
    _results["FM (BFS init)"] = cut


def test_kl(benchmark, task):
    netlist, _lower, _upper = task

    def run():
        return kl_bipartition(netlist, rng=random.Random(0))

    _sides, cut = benchmark.pedantic(run, rounds=1, iterations=1)
    _results["KL (exact balance)"] = cut


def test_spectral(benchmark, task):
    netlist, lower, upper = task
    _side0, cut = benchmark.pedantic(
        spectral_bipartition,
        args=(netlist, lower, upper),
        rounds=1,
        iterations=1,
    )
    _results["spectral sweep"] = cut


def test_fbb(benchmark, task):
    netlist, lower, upper = task

    def run():
        return fbb_bipartition(
            netlist, lower, upper, rng=random.Random(0)
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    _results["FBB (max-flow)"] = result.cut_capacity


def test_multilevel(benchmark, task):
    netlist, lower, upper = task
    _sides, cut = benchmark.pedantic(
        multilevel_bipartition,
        args=(netlist, lower, upper),
        kwargs={"config": MultilevelConfig(seed=0)},
        rounds=1,
        iterations=1,
    )
    _results["multilevel (hMETIS-style)"] = cut


def test_report(benchmark, results_dir):
    table = Table(
        title="BIPARTITIONER SHOOT-OUT on c1355 (45-55% window, cut nets)",
        headers=["engine", "cut"],
    )
    for engine in sorted(_results, key=_results.get):
        table.add_row(engine, _results[engine])
    rendered = benchmark.pedantic(table.render, rounds=1, iterations=1)
    emit(results_dir, "bipartitioners.txt", rendered)
    # the multilevel engine should be at least competitive with flat FM
    if "multilevel (hMETIS-style)" in _results and "FM (random init)" in _results:
        assert (
            _results["multilevel (hMETIS-style)"]
            <= _results["FM (random init)"] * 1.5
        )
