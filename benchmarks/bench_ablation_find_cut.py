"""Ablation: find_cut strategy — Algorithm 3's Prim growth vs the
MST-subtree refinement suggested in the paper's conclusions (after
Karger [7]), vs taking the best of both (our FLOW default).

DESIGN.md calls this the pivotal implementation choice: with a plain
Prim prefix growth the constructive quality trails the FM baselines;
MST-subtree cuts close that gap.
"""

import random

import pytest
from conftest import emit

from repro.analysis.tables import Table
from repro.core.flow_htp import FlowHTPConfig, flow_htp
from repro.core.spreading_metric import SpreadingMetricConfig
from repro.htp.hierarchy import binary_hierarchy
from repro.hypergraph.expansion import to_graph
from repro.hypergraph.generators import iscas85_surrogate

STRATEGIES = ("prim", "mst", "both")
_results = {}


@pytest.fixture(scope="module")
def instance(experiment_config):
    netlist = iscas85_surrogate("c1355", scale=experiment_config.scale)
    spec = binary_hierarchy(netlist.total_size(), height=4)
    graph = to_graph(netlist)
    return netlist, spec, graph


@pytest.mark.parametrize("strategy", STRATEGIES)
def test_find_cut_strategy(benchmark, instance, strategy):
    netlist, spec, graph = instance
    config = FlowHTPConfig(
        iterations=2,
        constructions_per_metric=4,
        find_cut_restarts=2,
        find_cut_strategy=strategy,
        seed=1,
        metric=SpreadingMetricConfig(
            alpha=0.3, delta=0.03, epsilon=0.1, max_rounds=1000
        ),
    )
    result = benchmark.pedantic(
        flow_htp,
        args=(netlist, spec),
        kwargs={"config": config, "graph": graph},
        rounds=1,
        iterations=1,
    )
    _results[strategy] = result.cost


def test_report(benchmark, results_dir):
    table = Table(
        title="ABLATION - find_cut strategy on c1355 (FLOW cost)",
        headers=["strategy", "cost"],
    )
    for strategy in STRATEGIES:
        if strategy in _results:
            table.add_row(strategy, _results[strategy])
    rendered = benchmark.pedantic(table.render, rounds=1, iterations=1)
    emit(results_dir, "ablation_find_cut.txt", rendered)
    if all(s in _results for s in STRATEGIES):
        # the refinement should not be materially worse than Prim growth
        # (random streams differ between runs, so allow slack)
        assert _results["both"] <= _results["prim"] * 1.2
