"""Cold-vs-warm latency of the partitioning service's result cache.

Stands up a real :class:`ServerThread` (ephemeral port, disk-backed
:class:`ResultCache`) and submits the same c2670-class JobSpec twice
through the HTTP client: the cold submission pays for the full
spreading-metric solve, the warm one is answered from the
content-addressed cache without touching the solver.  Both medians land
in the ``--bench-json`` trajectory (``BENCH_service.json`` at the repo
root) together with the cache and solver counters that prove the warm
path skipped the solve.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_service_cache.py \
        -q --bench-json BENCH_service.json
"""

from __future__ import annotations

import statistics
import time

import pytest

from repro.htp.hierarchy import binary_hierarchy
from repro.hypergraph.generators import iscas85_surrogate
from repro.service import JobSpec, ResultCache, ServerThread, ServiceClient


def _submit_and_wait(client: ServiceClient, spec: JobSpec):
    """One full submit -> poll -> result round trip; returns (seconds, doc)."""
    start = time.perf_counter()
    job = client.submit_spec(spec)
    client.wait(job["job_id"])
    payload = client.result(job["job_id"])
    return time.perf_counter() - start, payload


@pytest.fixture(scope="module")
def spec(experiment_config):
    netlist = iscas85_surrogate("c2670", scale=experiment_config.scale)
    hierarchy = binary_hierarchy(netlist.total_size(), height=4)
    return JobSpec.from_parts(netlist, hierarchy, {"iterations": 1})


def test_cold_vs_warm_submit(spec, tmp_path_factory, bench_record):
    cache_dir = tmp_path_factory.mktemp("service-cache")
    with ServerThread(
        manager_kwargs={"cache": ResultCache(cache_dir=cache_dir)}
    ) as server:
        client = ServiceClient(server.url, timeout=600)

        cold_seconds, cold_payload = _submit_and_wait(client, spec)
        perf_cold = client.metricsz()["perf"]
        assert perf_cold["dijkstra_calls"] > 0
        assert perf_cold["cache_misses"] == 1

        warm_times = []
        for _ in range(5):
            seconds, payload = _submit_and_wait(client, spec)
            warm_times.append(seconds)
            assert payload == cold_payload  # bit-identical warm answer
        warm_seconds = statistics.median(warm_times)

        perf_warm = client.metricsz()["perf"]
        # The warm submissions never re-ran the spreading-metric solver.
        assert perf_warm["dijkstra_calls"] == perf_cold["dijkstra_calls"]
        assert perf_warm["cache_hits"] == 5

        bench_record(
            "service_submit[c2670,cold]",
            cold_seconds,
            counters={
                "dijkstra_calls": perf_cold["dijkstra_calls"],
                "cache_hits": perf_cold["cache_hits"],
                "cache_misses": perf_cold["cache_misses"],
            },
        )
        bench_record(
            "service_submit[c2670,warm]",
            warm_seconds,
            counters={
                "cache_hits": perf_warm["cache_hits"],
                "cache_misses": perf_warm["cache_misses"],
            },
            speedup_vs_cold=round(cold_seconds / max(warm_seconds, 1e-9), 1),
        )
