"""Figure 2: the paper's worked example, regenerated end to end.

Checks every number the figure states: optimal cost 20, induced metric
values {2, 6} on cut edges, a tight LP bound, and FLOW recovering the
optimum.  Benchmarks the three computations involved.
"""

import pytest
from conftest import emit

from repro.analysis.tables import Table
from repro.core.flow_htp import FlowHTPConfig, flow_htp
from repro.core.lp import solve_spreading_lp
from repro.core.spreading_metric import SpreadingMetricConfig, compute_spreading_metric
from repro.htp.cost import induced_metric, total_cost
from repro.htp.hierarchy import figure2_hierarchy
from repro.htp.partition import PartitionTree
from repro.hypergraph.generators import (
    figure2_graph,
    figure2_hypergraph,
    figure2_optimal_blocks,
)


def optimal_partition():
    blocks = figure2_optimal_blocks()
    return PartitionTree.from_nested(
        [[blocks[0], blocks[1]], [blocks[2], blocks[3]]], 16
    )


def test_figure2_lp_bound(benchmark, results_dir):
    graph = figure2_graph()
    spec = figure2_hierarchy()
    result = benchmark.pedantic(
        solve_spreading_lp, args=(graph, spec), rounds=1, iterations=1
    )
    assert result.converged
    assert result.lower_bound == pytest.approx(20.0, abs=1e-4)

    netlist = figure2_hypergraph()
    optimal = optimal_partition()
    metric_values = sorted(set(induced_metric(netlist, optimal, spec)))
    table = Table(
        title="FIGURE 2 - worked example, paper vs reproduced",
        headers=["quantity", "paper", "reproduced"],
    )
    table.add_row("optimal HTP cost", 20, total_cost(netlist, optimal, spec))
    table.add_row("level-0 cut edge d(e)", 2, metric_values[1])
    table.add_row("level-1 cut edge d(e)", 6, metric_values[2])
    table.add_row("LP (P1) optimum", "<= 20", round(result.lower_bound, 3))
    emit(results_dir, "figure2.txt", table.render())


def test_figure2_metric_computation(benchmark):
    graph = figure2_graph()
    spec = figure2_hierarchy()
    result = benchmark(
        compute_spreading_metric,
        graph,
        spec,
        SpreadingMetricConfig(seed=1),
    )
    assert result.satisfied


def test_figure2_flow_recovers_optimum(benchmark):
    netlist = figure2_hypergraph()
    graph = figure2_graph()
    spec = figure2_hierarchy()
    result = benchmark.pedantic(
        flow_htp,
        args=(netlist, spec),
        kwargs={
            "config": FlowHTPConfig(
                iterations=2, constructions_per_metric=4, seed=1
            ),
            "graph": graph,
        },
        rounds=1,
        iterations=1,
    )
    assert result.cost == pytest.approx(20.0)
