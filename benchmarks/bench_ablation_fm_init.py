"""Ablation: FM initial-partition style in the baselines.

The DAC'96-era baselines start FM from random partitions; BFS-grown seed
regions are an hMETIS-era improvement.  This bench quantifies how much
the baselines gain from the modern seeding (context for Table 2's
era-faithful defaults, documented in DESIGN.md).
"""

import random

import pytest
from conftest import emit

from repro.analysis.tables import Table
from repro.htp.cost import total_cost
from repro.htp.hierarchy import binary_hierarchy
from repro.hypergraph.generators import iscas85_surrogate
from repro.partitioning.fm import FMConfig
from repro.partitioning.rfm import rfm_partition

INITS = ("random", "bfs")
_results = {}


@pytest.fixture(scope="module")
def instance(experiment_config):
    netlist = iscas85_surrogate("c1355", scale=experiment_config.scale)
    spec = binary_hierarchy(netlist.total_size(), height=4)
    return netlist, spec


@pytest.mark.parametrize("init", INITS)
def test_rfm_with_init(benchmark, instance, init):
    netlist, spec = instance

    def run():
        return rfm_partition(
            netlist,
            spec,
            rng=random.Random(0),
            fm_config=FMConfig(init=init),
        )

    tree = benchmark.pedantic(run, rounds=1, iterations=1)
    _results[init] = total_cost(netlist, tree, spec)


def test_report(benchmark, results_dir):
    table = Table(
        title="ABLATION - FM initial partition style (RFM on c1355)",
        headers=["init", "RFM cost"],
    )
    for init in INITS:
        if init in _results:
            table.add_row(init, _results[init])
    rendered = benchmark.pedantic(table.render, rounds=1, iterations=1)
    emit(results_dir, "ablation_fm_init.txt", rendered)
