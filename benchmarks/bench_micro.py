"""Micro-benchmarks of the substrate primitives.

These are the hot paths the complexity analysis in Section 3.3 of the
paper is about: Dijkstra (the metric computation's inner loop), Prim
growth (find_cut), an FM pass, and cost evaluation.
"""

import random

import numpy as np
import pytest

from repro.algorithms.dijkstra import dijkstra
from repro.algorithms.prim import prim_growth
from repro.core.constraints import SpreadingOracle
from repro.htp.cost import IncrementalCost, total_cost
from repro.htp.hierarchy import binary_hierarchy
from repro.hypergraph.expansion import to_graph
from repro.hypergraph.generators import iscas85_surrogate
from repro.partitioning.fm import FMConfig, fm_bipartition
from repro.partitioning.random_init import random_partition


@pytest.fixture(scope="module")
def instance(experiment_config):
    netlist = iscas85_surrogate("c2670", scale=experiment_config.scale)
    spec = binary_hierarchy(netlist.total_size(), height=4)
    graph = to_graph(netlist)
    rng = np.random.RandomState(0)
    lengths = rng.uniform(0.01, 1.0, graph.num_edges)
    return netlist, spec, graph, lengths


def test_dijkstra_pure_python(benchmark, instance):
    _netlist, _spec, graph, lengths = instance
    dist, _pn, _pe = benchmark(dijkstra, graph, 0, lengths)
    assert dist[0] == 0.0


def test_dijkstra_scipy_oracle(benchmark, instance):
    _netlist, spec, graph, lengths = instance
    oracle = SpreadingOracle(graph, spec)
    oracle.set_lengths(lengths)
    benchmark(oracle.violation_for, 0, "first")


def test_prim_growth_full(benchmark, instance):
    _netlist, _spec, graph, lengths = instance

    def grow():
        return sum(1 for _ in prim_growth(graph, [0], lengths))

    count = benchmark(grow)
    assert count == graph.num_nodes


def test_fm_bipartition(benchmark, instance):
    netlist, _spec, _graph, _lengths = instance
    half = netlist.num_nodes // 2

    def run():
        return fm_bipartition(
            netlist,
            half - 20,
            half + 20,
            rng=random.Random(0),
            config=FMConfig(restarts=1, max_passes=2),
        )

    _sides, cut = benchmark.pedantic(run, rounds=1, iterations=1)
    assert cut >= 0


def test_total_cost_evaluation(benchmark, instance):
    netlist, spec, _graph, _lengths = instance
    partition = random_partition(netlist, spec, rng=random.Random(0))
    cost = benchmark(total_cost, netlist, partition, spec)
    assert cost > 0


def test_incremental_move_throughput(benchmark, instance):
    netlist, spec, _graph, _lengths = instance
    partition = random_partition(netlist, spec, rng=random.Random(1))
    tracker = IncrementalCost(netlist, partition, spec)
    leaves = partition.leaves()
    rng = random.Random(2)
    moves = [
        (rng.randrange(netlist.num_nodes), rng.choice(leaves))
        for _ in range(200)
    ]

    def burst():
        for node, leaf in moves:
            tracker.apply(node, leaf)

    benchmark.pedantic(burst, rounds=1, iterations=1)
    assert tracker.cost == pytest.approx(tracker.recompute())
