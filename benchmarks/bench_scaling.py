"""Runtime scaling: the Section 3.3 complexity claim, measured.

The paper's analysis says Algorithm 2 (the metric) dominates Algorithm 3
(the construction).  This bench profiles FLOW on the five surrogates and
records the per-phase wall-clock split and the cost, checking that the
metric phase indeed dominates on the larger circuits.
"""

import pytest
from conftest import emit

from repro.analysis.profiling import profile_flow
from repro.analysis.tables import Table
from repro.core.flow_htp import FlowHTPConfig
from repro.core.spreading_metric import SpreadingMetricConfig
from repro.htp.hierarchy import binary_hierarchy
from repro.hypergraph.generators import iscas85_surrogate

CIRCUITS = ("c1355", "c2670", "c7552")
_profiles = {}


@pytest.mark.parametrize("circuit", CIRCUITS)
def test_profile(benchmark, experiment_config, circuit):
    netlist = iscas85_surrogate(circuit, scale=experiment_config.scale)
    spec = binary_hierarchy(netlist.total_size(), height=4)
    config = FlowHTPConfig(
        iterations=1,
        constructions_per_metric=4,
        seed=0,
        metric=SpreadingMetricConfig(
            alpha=0.3, delta=0.03, epsilon=0.1, max_rounds=1000
        ),
    )
    profile = benchmark.pedantic(
        profile_flow, args=(netlist, spec, config), rounds=1, iterations=1
    )
    _profiles[circuit] = (netlist.num_nodes, profile)


def test_report(benchmark, results_dir):
    table = Table(
        title="SCALING - FLOW phase split (Section 3.3 claim)",
        headers=[
            "circuit",
            "#nodes",
            "metric s",
            "construct s",
            "metric share",
            "cost",
        ],
    )
    for circuit in CIRCUITS:
        if circuit not in _profiles:
            continue
        nodes, profile = _profiles[circuit]
        table.add_row(
            circuit,
            nodes,
            round(profile.metric_seconds, 2),
            round(profile.construct_seconds, 2),
            f"{profile.metric_fraction:.0%}",
            profile.best_cost,
        )
    rendered = benchmark.pedantic(table.render, rounds=1, iterations=1)
    emit(results_dir, "scaling.txt", rendered)
    # the metric phase must dominate on the largest circuit
    if "c7552" in _profiles:
        _nodes, profile = _profiles["c7552"]
        assert profile.metric_fraction > 0.5
