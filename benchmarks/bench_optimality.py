"""Optimality gaps: FLOW vs the exact oracles on the golden corpus.

Every instance in ``tests/regressions/optimal/`` carries a proven
optimal cost.  This benchmark re-proves it live (tree-metric DP on
tree-structured instances, branch-and-bound otherwise, plus the ILP
when pulp is installed), runs deterministic FLOW with the committed
config, and records the achieved cost / optimum ratio per instance.

Refresh the canonical record with::

    make bench-optimality
    # == PYTHONPATH=src python -m pytest benchmarks/bench_optimality.py \
    #        -q --bench-json BENCH_optimality.json

The gap table in docs/benchmarks.md mirrors the output; the
``optimality``-marked test tier (tests/test_optimality_corpus.py)
asserts the same bounds on every ``pytest`` run, so this file is about
*recording* the trajectory, not gating it.
"""

import time

import pytest
from conftest import emit

from repro.analysis.exact import (
    HAS_PULP,
    ILPOracle,
    iter_corpus,
    solve_exact,
)
from repro.core.flow_htp import FlowHTPConfig, flow_htp
from repro.analysis.tables import Table
from repro.htp.validate import partition_violations

CORPUS = iter_corpus()
_rows = {}


def _flow_config(instance) -> FlowHTPConfig:
    return FlowHTPConfig(
        iterations=int(instance.flow["iterations"]),
        seed=int(instance.flow["seed"]),
    )


@pytest.mark.parametrize(
    "instance", CORPUS, ids=lambda inst: inst.name
)
def test_gap_on_golden_instance(bench_record, instance):
    started = time.perf_counter()
    exact = solve_exact(
        instance.hypergraph, instance.spec, method="auto", time_limit=60.0
    )
    exact_seconds = time.perf_counter() - started
    assert exact.status == "optimal", (
        f"{instance.name}: exact solve inconclusive ({exact.status})"
    )
    assert exact.cost == instance.optimal_cost, (
        f"{instance.name}: live optimum {exact.cost} != committed "
        f"{instance.optimal_cost}"
    )

    started = time.perf_counter()
    flow = flow_htp(
        instance.hypergraph, instance.spec, _flow_config(instance)
    )
    flow_seconds = time.perf_counter() - started
    assert partition_violations(
        instance.hypergraph, flow.partition, instance.spec
    ) == []

    gap = exact.gap(flow.cost)
    assert gap <= instance.flow["gap_bound"] + 1e-9, (
        f"{instance.name}: FLOW gap {gap:.3f} exceeds committed bound "
        f"{instance.flow['gap_bound']}"
    )
    bench_record(
        f"optimality[{instance.name}]",
        exact_seconds,
        solver=exact.solver,
        optimal_cost=exact.cost,
        flow_cost=flow.cost,
        flow_seconds=round(flow_seconds, 4),
        gap=round(gap, 4),
        gap_bound=instance.flow["gap_bound"],
        tree_structured=instance.tree_structured,
    )
    _rows[instance.name] = (
        instance.name,
        "tree" if instance.tree_structured else "general",
        exact.solver,
        exact.cost,
        flow.cost,
        round(gap, 3),
        instance.flow["gap_bound"],
    )


@pytest.mark.parametrize(
    "instance", CORPUS, ids=lambda inst: inst.name
)
def test_ilp_cross_check(bench_record, instance):
    """Where pulp is installed, the ILP must land on the same optimum."""
    if not HAS_PULP:
        pytest.skip("pulp not installed; ILP rows omitted")
    started = time.perf_counter()
    result = ILPOracle().solve(
        instance.hypergraph, instance.spec, time_limit=60.0
    )
    seconds = time.perf_counter() - started
    assert result.status == "optimal"
    assert result.cost == instance.optimal_cost
    bench_record(
        f"optimality_ilp[{instance.name}]", seconds, cost=result.cost
    )


def test_emit_gap_table(results_dir):
    """Aggregate the per-instance rows into the committed gap table."""
    if not _rows:
        pytest.skip("no per-instance rows collected")
    table = Table(
        title="Optimality gap: FLOW vs proven optimum (golden corpus)",
        headers=[
            "instance", "shape", "oracle", "optimal", "flow",
            "gap", "bound",
        ],
    )
    for name in sorted(_rows):
        table.add_row(*_rows[name])
    emit(results_dir, "optimality_gap.txt", table.render())
