"""Ablation: net model for the metric graph (clique vs cycle expansion).

DESIGN.md: the clique model's ``c(e)/(|e|-1)`` capacities keep cut costs
faithful; the cycle model is linear-size but distorts congestion.  This
bench compares the end-to-end FLOW cost under each.
"""

import pytest
from conftest import emit

from repro.analysis.tables import Table
from repro.core.flow_htp import FlowHTPConfig, flow_htp
from repro.core.spreading_metric import SpreadingMetricConfig
from repro.htp.hierarchy import binary_hierarchy
from repro.hypergraph.generators import iscas85_surrogate

MODELS = ("clique", "cycle")
_results = {}


@pytest.fixture(scope="module")
def instance(experiment_config):
    netlist = iscas85_surrogate("c1355", scale=experiment_config.scale)
    spec = binary_hierarchy(netlist.total_size(), height=4)
    return netlist, spec


@pytest.mark.parametrize("model", MODELS)
def test_net_model(benchmark, instance, model):
    netlist, spec = instance
    config = FlowHTPConfig(
        iterations=1,
        constructions_per_metric=4,
        net_model=model,
        seed=1,
        metric=SpreadingMetricConfig(
            alpha=0.3, delta=0.03, epsilon=0.1, max_rounds=1000
        ),
    )
    result = benchmark.pedantic(
        flow_htp, args=(netlist, spec), kwargs={"config": config},
        rounds=1, iterations=1,
    )
    _results[model] = result.cost


def test_report(benchmark, results_dir):
    table = Table(
        title="ABLATION - net model for the metric graph on c1355",
        headers=["model", "FLOW cost"],
    )
    for model in MODELS:
        if model in _results:
            table.add_row(model, _results[model])
    rendered = benchmark.pedantic(table.render, rounds=1, iterations=1)
    emit(results_dir, "ablation_net_model.txt", rendered)
