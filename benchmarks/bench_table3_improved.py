"""Table 3: GFM+ / RFM+ / FLOW+ — FM iterative improvement (the '+' rows).

Improves Table 2's partitions with the hierarchical FM phase and checks
the published shape: FM never worsens any initial partition, and FLOW+
still beats GFM+ and RFM+ on c2670 and c7552.
"""

from conftest import emit

from repro.analysis.experiments import run_table2, run_table3, table3_to_table


def test_table3(benchmark, experiment_config, results_dir, partition_store):
    store = {
        key: value
        for key, value in partition_store.items()
        if isinstance(key, tuple)
    }
    if not store:
        # Running this file alone: rebuild Table 2's partitions first.
        run_table2(experiment_config, collect_partitions=store)
    rows = benchmark.pedantic(
        run_table3,
        args=(experiment_config,),
        kwargs={"partitions": store},
        rounds=1,
        iterations=1,
    )
    emit(results_dir, "table3.txt", table3_to_table(rows).render())

    # FM improvement never worsens (valid at any scale).
    for row in rows:
        assert row.gfm_improvement >= -1e-9
        assert row.rfm_improvement >= -1e-9
        assert row.flow_improvement >= -1e-9

    if experiment_config.scale != 1.0:
        return
    by_circuit = {row.circuit: row for row in rows}
    # FLOW+ still beats GFM+ and RFM+ on c2670 and c7552.
    for circuit in ("c2670", "c7552"):
        row = by_circuit[circuit]
        assert row.flow_plus_cost < row.gfm_plus_cost, circuit
        assert row.flow_plus_cost < row.rfm_plus_cost, circuit
