"""Shared fixtures for the benchmark harness.

Set ``REPRO_BENCH_SCALE`` (e.g. ``0.25``) to shrink the surrogate
circuits for a quick smoke run; the default ``1.0`` reproduces the
paper-sized instances.  Reproduced tables are written to
``benchmarks/results/`` and printed.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.analysis.experiments import ExperimentConfig


@pytest.fixture(scope="session")
def experiment_config() -> ExperimentConfig:
    """Experiment parameters shared by every table benchmark."""
    scale = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
    return ExperimentConfig(scale=scale)


@pytest.fixture(scope="session")
def results_dir() -> Path:
    """Directory collecting the regenerated tables."""
    directory = Path(__file__).parent / "results"
    directory.mkdir(exist_ok=True)
    return directory


@pytest.fixture(scope="session")
def partition_store() -> dict:
    """Cross-benchmark store: Table 2's partitions feed Table 3."""
    return {}


def emit(results_dir: Path, name: str, text: str) -> None:
    """Write a reproduced table to disk and echo it."""
    (results_dir / name).write_text(text + "\n")
    print(f"\n{text}\n[written to benchmarks/results/{name}]")
