"""Shared fixtures for the benchmark harness.

Set ``REPRO_BENCH_SCALE`` (e.g. ``0.25``) to shrink the surrogate
circuits for a quick smoke run; the default ``1.0`` reproduces the
paper-sized instances.  Reproduced tables are written to
``benchmarks/results/`` and printed.

Pass ``--bench-json PATH`` to also write a machine-readable perf record
(operation -> median seconds + perf counters) — the repo keeps the
canonical trajectory in ``BENCH_micro.json`` at the repo root, refreshed
by ``pytest benchmarks/bench_spreading_batch.py --bench-json
BENCH_micro.json``.
"""

from __future__ import annotations

import json
import os
import platform
import shutil
from pathlib import Path

import pytest

from repro.analysis.experiments import ExperimentConfig


def pytest_addoption(parser) -> None:
    parser.addoption(
        "--bench-json",
        action="store",
        default=None,
        metavar="PATH",
        help=(
            "write micro-bench medians and perf counters collected via the "
            "bench_record fixture to PATH as JSON"
        ),
    )


def pytest_configure(config) -> None:
    config._bench_json_store = {}


def pytest_sessionfinish(session, exitstatus) -> None:
    path = session.config.getoption("--bench-json", default=None)
    store = getattr(session.config, "_bench_json_store", {})
    if not path or not store:
        return
    try:
        from repro.core import _kernel as native_kernel

        kernel_built = native_kernel.available()
    except Exception:  # pragma: no cover - defensive
        kernel_built = False
    payload = {
        "meta": {
            "python": platform.python_version(),
            "machine": platform.machine(),
            "scale": float(os.environ.get("REPRO_BENCH_SCALE", "1.0")),
            # Context the engine rows need to be interpretable: a 1-core
            # container auto-serialises the parallel engine, and the
            # native row only exists when a compiler built the kernel.
            "cpu_count": os.cpu_count(),
            "compiler": shutil.which("cc") or shutil.which("gcc"),
            "native_kernel_built": kernel_built,
        },
        "ops": store,
    }
    target = Path(path)
    if target.exists():
        # A "baseline" section (medians measured at some reference
        # commit) is preserved across refreshes so the before/after
        # trajectory stays in one file.
        try:
            baseline = json.loads(target.read_text()).get("baseline")
        except (OSError, ValueError):
            baseline = None
        if baseline is not None:
            payload["baseline"] = baseline
    target.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"\n[bench-json written to {path}]")


@pytest.fixture(scope="session")
def bench_record(request):
    """Recorder callable: ``bench_record(op, seconds, **extra)``.

    ``op`` names the operation (e.g. ``compute_spreading_metric[c2670]``),
    ``seconds`` is its median wall time, and ``extra`` may carry counters
    or before/after context.  Everything lands in the ``--bench-json``
    output; without that option the records are simply discarded.
    """
    store = request.config._bench_json_store

    def record(op: str, seconds: float, **extra) -> None:
        entry = {"median_seconds": seconds}
        entry.update(extra)
        store[op] = entry

    return record


@pytest.fixture(scope="session")
def experiment_config() -> ExperimentConfig:
    """Experiment parameters shared by every table benchmark."""
    scale = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
    return ExperimentConfig(scale=scale)


@pytest.fixture(scope="session")
def results_dir() -> Path:
    """Directory collecting the regenerated tables."""
    directory = Path(__file__).parent / "results"
    directory.mkdir(exist_ok=True)
    return directory


@pytest.fixture(scope="session")
def partition_store() -> dict:
    """Cross-benchmark store: Table 2's partitions feed Table 3."""
    return {}


def emit(results_dir: Path, name: str, text: str) -> None:
    """Write a reproduced table to disk and echo it."""
    (results_dir / name).write_text(text + "\n")
    print(f"\n{text}\n[written to benchmarks/results/{name}]")
