"""Benchmarks of the theory substrate: separators, duality, ratio cuts.

Not part of the paper's evaluation section, but the machinery Section 1
and 2 stand on; these benches keep the substrate's quality and speed
under regression watch.
"""

import random

import pytest
from conftest import emit

from repro.analysis.tables import Table
from repro.core.concurrent_flow import (
    Commodity,
    cut_throughput_bound,
    max_concurrent_flow,
)
from repro.core.ratio_cut import exact_ratio_cut, ratio_cut
from repro.core.separator import rho_separator
from repro.hypergraph.expansion import to_graph
from repro.hypergraph.generators import (
    figure2_graph,
    figure2_hypergraph,
    iscas85_surrogate,
)

_rows = []


def test_rho_separator(benchmark, experiment_config):
    netlist = iscas85_surrogate("c1355", scale=experiment_config.scale)

    def run():
        return rho_separator(netlist, rho=0.2, rng=random.Random(0))

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    _rows.append(
        (
            "rho-separator (rho=0.2, c1355)",
            f"{len(result.pieces)} pieces, cut {result.cut_capacity:g}",
        )
    )
    bound = 0.2 * netlist.total_size()
    assert all(netlist.total_size(p) <= bound + 1e-9 for p in result.pieces)


def test_concurrent_flow_duality(benchmark):
    graph = figure2_graph()
    commodities = [Commodity(0, 15), Commodity(3, 12), Commodity(5, 10)]
    result = benchmark.pedantic(
        max_concurrent_flow,
        args=(graph, commodities),
        kwargs={"max_phases": 80},
        rounds=1,
        iterations=1,
    )
    bound = cut_throughput_bound(graph, commodities, list(range(8)))
    _rows.append(
        (
            "max concurrent flow (figure2, 3 commodities)",
            f"lambda {result.throughput:.3f} <= cut bound {bound:.3f}",
        )
    )
    assert result.throughput <= bound * 1.2


def test_ratio_cut_vs_exact(benchmark):
    netlist = figure2_hypergraph()
    graph = figure2_graph()

    def run():
        return ratio_cut(
            netlist, graph=graph, rng=random.Random(0), restarts=6
        )

    heuristic = benchmark.pedantic(run, rounds=1, iterations=1)
    exact = exact_ratio_cut(netlist)
    _rows.append(
        (
            "ratio cut (figure2)",
            f"heuristic {heuristic.ratio:.4f} vs exact {exact.ratio:.4f}",
        )
    )
    assert heuristic.ratio <= exact.ratio * 2


def test_report(benchmark, results_dir):
    table = Table(
        title="THEORY SUBSTRATE - separators, duality, ratio cuts",
        headers=["experiment", "outcome"],
    )
    for name, outcome in _rows:
        table.add_row(name, outcome)
    rendered = benchmark.pedantic(table.render, rounds=1, iterations=1)
    emit(results_dir, "theory_substrate.txt", rendered)
