"""Table 2: GFM vs RFM vs FLOW constructive partitioning costs.

Regenerates the paper's Table 2 on the five surrogate circuits and checks
the published result *shape*: FLOW beats both baselines on the four
random-logic circuits (largest relative wins on c2670 and c7552) and
loses to both on c6288 (the regular multiplier array).
"""

from conftest import emit

from repro.analysis.experiments import run_table2, table2_to_table


def test_table2(benchmark, experiment_config, results_dir, partition_store):
    rows = benchmark.pedantic(
        run_table2,
        args=(experiment_config,),
        kwargs={"collect_partitions": partition_store},
        rounds=1,
        iterations=1,
    )
    emit(results_dir, "table2.txt", table2_to_table(rows).render())
    partition_store["table2_rows"] = rows

    if experiment_config.scale != 1.0:
        return  # shape assertions are calibrated for full-size instances
    by_circuit = {row.circuit: row for row in rows}
    # FLOW wins on the four random-logic circuits...
    for circuit in ("c1355", "c2670", "c3540", "c7552"):
        row = by_circuit[circuit]
        assert row.flow_cost < row.gfm_cost, circuit
        assert row.flow_cost < row.rfm_cost, circuit
    # ...and loses to both on c6288 (the paper's negative result).
    c6288 = by_circuit["c6288"]
    assert c6288.flow_cost > c6288.gfm_cost
    assert c6288.flow_cost > c6288.rfm_cost
    # The biggest relative FLOW improvements are on c2670 and c7552.
    margins = {
        row.circuit: min(row.gfm_cost, row.rfm_cost) / row.flow_cost
        for row in rows
        if row.circuit != "c6288"
    }
    top_two = sorted(margins, key=margins.get, reverse=True)[:2]
    assert "c7552" in top_two
