"""Ablation: spreading-metric pricing parameters (alpha, delta).

Algorithm 2 prices edges as ``d(e) = exp(alpha f(e)/c(e)) - 1`` and
injects ``delta`` flow per violated tree.  Large steps converge in a
handful of injections but leave a coarse congestion pattern; small steps
take more injections and sharpen the metric.  This bench sweeps the grid
and records cost, injections and runtime.
"""

import pytest
from conftest import emit

from repro.analysis.tables import Table
from repro.core.flow_htp import FlowHTPConfig, flow_htp
from repro.core.spreading_metric import SpreadingMetricConfig
from repro.htp.hierarchy import binary_hierarchy
from repro.hypergraph.expansion import to_graph
from repro.hypergraph.generators import iscas85_surrogate

GRID = [
    (1.0, 0.25),
    (1.0, 0.05),
    (0.3, 0.03),
    (0.1, 0.03),
]
_results = {}


@pytest.fixture(scope="module")
def instance(experiment_config):
    netlist = iscas85_surrogate("c1355", scale=experiment_config.scale)
    spec = binary_hierarchy(netlist.total_size(), height=4)
    graph = to_graph(netlist)
    return netlist, spec, graph


@pytest.mark.parametrize("alpha,delta", GRID)
def test_metric_parameters(benchmark, instance, alpha, delta):
    netlist, spec, graph = instance
    config = FlowHTPConfig(
        iterations=1,
        constructions_per_metric=4,
        seed=1,
        metric=SpreadingMetricConfig(
            alpha=alpha, delta=delta, epsilon=0.1, max_rounds=1000
        ),
    )
    result = benchmark.pedantic(
        flow_htp,
        args=(netlist, spec),
        kwargs={"config": config, "graph": graph},
        rounds=1,
        iterations=1,
    )
    _results[(alpha, delta)] = (
        result.cost,
        result.metric_results[0].injections,
    )


def test_report(benchmark, results_dir):
    table = Table(
        title="ABLATION - metric pricing (alpha, delta) on c1355",
        headers=["alpha", "delta", "FLOW cost", "injections"],
    )
    for (alpha, delta), (cost, injections) in sorted(_results.items()):
        table.add_row(alpha, delta, cost, injections)
    rendered = benchmark.pedantic(table.render, rounds=1, iterations=1)
    emit(results_dir, "ablation_metric.txt", rendered)
