"""Table 1: sizes of the ISCAS85 test cases (surrogates vs published).

Regenerates the paper's Table 1 and benchmarks surrogate generation.
"""

from conftest import emit

from repro.analysis.experiments import run_table1
from repro.hypergraph.generators import iscas85_surrogate


def test_table1(benchmark, experiment_config, results_dir):
    table = benchmark.pedantic(
        run_table1, args=(experiment_config,), rounds=1, iterations=1
    )
    emit(results_dir, "table1.txt", table.render())
    # Node counts must match the published sizes exactly at scale 1.
    if experiment_config.scale == 1.0:
        for row in table.rows:
            assert row[1] == row[4], f"{row[0]}: node count mismatch"


def test_generate_largest_surrogate(benchmark, experiment_config):
    netlist = benchmark(
        iscas85_surrogate, "c7552", scale=experiment_config.scale
    )
    assert netlist.num_nodes > 0
