"""Open-loop load against a real router + worker-subprocess cluster.

Each round stands up an actual ``htp route`` subprocess fronting N
``htp serve --join`` worker subprocesses (own interpreters, real
sockets — nothing in-process), then drives a seeded open-loop arrival
stream at it: job k is submitted at its pre-drawn exponential arrival
time whether or not earlier jobs finished, the way outside traffic
actually behaves.  Recorded per round: p50/p99 end-to-end latency
(arrival to terminal state, queueing included) and completed-job
throughput, for 1, 2 and 4 workers.

Two more rows complete the story: ``cluster_warm`` measures the
router's shared cache tier (repeat submissions answered without
touching a worker), and ``cluster_failover`` SIGKILLs the worker that
owns a slow job mid-solve and times the reroute-and-resume to a done
state — the bench-grade version of the chaos drill.

On a single-core container the w2/w4 rows measure placement and
routing overhead, not parallel speedup — workers time-share one CPU.
The ``cpu_count`` field in the meta block is there to make that
readable.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_cluster.py \
        -q --bench-json BENCH_cluster.json
"""

from __future__ import annotations

import os
import random
import socket
import subprocess
import sys
import threading
import time

import pytest

from repro.core.faults import FaultTolerance
from repro.htp.hierarchy import binary_hierarchy
from repro.hypergraph.generators import planted_hierarchy_hypergraph
from repro.service import JobSpec, ServiceClient, ServiceClientError

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

#: Jobs per load round and the mean arrival rate of the open-loop
#: stream.  Every job is a distinct content address (seeded mix), so
#: the load rows measure solves, not cache hits.
JOBS_PER_ROUND = 12
ARRIVALS_PER_SECOND = 8.0
WORKER_COUNTS = (1, 2, 4)


def _free_port() -> int:
    with socket.socket(socket.AF_INET, socket.SOCK_STREAM) as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def _env():
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
    return env


def _spawn_router(port, journal_dir=None):
    argv = [
        sys.executable, "-m", "repro.cli", "route",
        "--host", "127.0.0.1",
        "--port", str(port),
        "--heartbeat-interval", "0.5",
    ]
    if journal_dir is not None:
        argv += ["--journal", str(journal_dir)]
    return subprocess.Popen(
        argv,
        env=_env(),
        cwd=REPO_ROOT,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )


def _spawn_worker(router_url, worker_id, tmp_path, shared_ckpt=False):
    argv = [
        sys.executable, "-m", "repro.cli", "serve",
        "--host", "127.0.0.1",
        "--port", str(_free_port()),
        "--max-concurrency", "1",
        "--join", router_url,
        "--worker-id", worker_id,
        "--cache-dir", str(tmp_path / f"cache-{worker_id}"),
    ]
    if shared_ckpt:
        argv += ["--checkpoint-dir", str(tmp_path / "ckpt")]
    return subprocess.Popen(
        argv,
        env=_env(),
        cwd=REPO_ROOT,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )


class Cluster:
    """A router + N worker subprocesses, torn down on exit."""

    def __init__(self, workers, tmp_path, shared_ckpt=False):
        port = _free_port()
        self.url = f"http://127.0.0.1:{port}"
        self.router = _spawn_router(port, journal_dir=tmp_path / "wal")
        self.client = ServiceClient(
            self.url,
            timeout=30,
            tolerance=FaultTolerance(task_retries=3, backoff_base=0.05),
        )
        self.workers = {}
        self._wait_healthy()
        for index in range(workers):
            worker_id = f"w{index}"
            self.workers[worker_id] = _spawn_worker(
                self.url, worker_id, tmp_path, shared_ckpt=shared_ckpt
            )
        self._wait_alive(workers)

    def _wait_healthy(self, timeout=30.0):
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if self.router.poll() is not None:
                raise AssertionError("router exited early")
            try:
                self.client.healthz()
                return
            except ServiceClientError:
                time.sleep(0.1)
        raise AssertionError("router never became healthy")

    def _wait_alive(self, count, timeout=30.0):
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            docs = self.client._request("GET", "/workers")["workers"]
            if sum(1 for d in docs if d["state"] == "alive") >= count:
                return
            time.sleep(0.1)
        raise AssertionError(f"never saw {count} alive workers")

    def close(self):
        for process in (*self.workers.values(), self.router):
            if process.poll() is None:
                process.kill()
                process.wait(timeout=10)

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()


def _job_mix(count, seed):
    """``count`` distinct small specs — the seeded job mix."""
    specs = []
    for index in range(count):
        netlist = planted_hierarchy_hypergraph(
            32, height=2, seed=seed * 1000 + index
        )
        hierarchy = binary_hierarchy(netlist.total_size(), height=2)
        specs.append(
            JobSpec.from_parts(netlist, hierarchy, {"iterations": 1})
        )
    return specs


def _quantile(samples, q):
    """Linear-interpolation quantile of a small sample list."""
    ordered = sorted(samples)
    if len(ordered) == 1:
        return ordered[0]
    position = q * (len(ordered) - 1)
    low = int(position)
    high = min(low + 1, len(ordered) - 1)
    return ordered[low] + (ordered[high] - ordered[low]) * (position - low)


def _open_loop(client, specs, seed):
    """Submit ``specs`` on a pre-drawn exponential arrival clock.

    Returns (latencies, elapsed): per-job arrival-to-done seconds and
    the wall time from first arrival to last completion.
    """
    rng = random.Random(seed)
    arrivals, clock = [], 0.0
    for _ in specs:
        arrivals.append(clock)
        clock += rng.expovariate(ARRIVALS_PER_SECOND)

    latencies = []
    failures = []
    threads = []
    start = time.perf_counter()

    def submit_and_time(spec, offset):
        try:
            job = client.submit_spec(spec)
            status = client.wait(job["job_id"], timeout=300)
            if status["state"] != "done":
                failures.append(status)
                return
            latencies.append(time.perf_counter() - start - offset)
        except ServiceClientError as exc:
            failures.append(exc)

    for spec, offset in zip(specs, arrivals):
        behind = offset - (time.perf_counter() - start)
        if behind > 0:
            time.sleep(behind)  # open loop: the clock, not completions
        # Latency is anchored to the *intended* arrival time, so a
        # submitter that fell behind still charges the queueing delay.
        thread = threading.Thread(target=submit_and_time, args=(spec, offset))
        thread.start()
        threads.append(thread)
    for thread in threads:
        thread.join(timeout=300)
    elapsed = time.perf_counter() - start
    assert not failures, f"open-loop jobs failed: {failures[:3]}"
    return latencies, elapsed


@pytest.mark.parametrize("workers", WORKER_COUNTS)
def test_load_vs_worker_count(workers, tmp_path_factory, bench_record):
    tmp_path = tmp_path_factory.mktemp(f"cluster-w{workers}")
    specs = _job_mix(JOBS_PER_ROUND, seed=workers)
    with Cluster(workers, tmp_path) as cluster:
        latencies, elapsed = _open_loop(
            cluster.client, specs, seed=workers
        )
        metrics = cluster.client.metricsz()
        assert metrics["cluster"]["placements"] == JOBS_PER_ROUND
        p50 = _quantile(latencies, 0.50)
        bench_record(
            f"cluster_load[w{workers}]",
            p50,
            p50_seconds=p50,
            p99_seconds=_quantile(latencies, 0.99),
            throughput_jobs_per_s=len(latencies) / elapsed,
            jobs=len(latencies),
            workers=workers,
        )


def test_warm_cluster_cache(tmp_path_factory, bench_record):
    """Repeat submissions answered by the router's shared cache tier."""
    tmp_path = tmp_path_factory.mktemp("cluster-warm")
    spec = _job_mix(1, seed=99)[0]
    with Cluster(2, tmp_path) as cluster:
        client = cluster.client

        start = time.perf_counter()
        job = client.submit_spec(spec)
        client.wait(job["job_id"], timeout=300)
        reference = client.result(job["job_id"])
        cold_seconds = time.perf_counter() - start

        warm = []
        for _ in range(10):
            start = time.perf_counter()
            doc = client.submit_spec(spec)
            assert doc["state"] == "done" and doc["cached"] is True
            assert client.result(doc["job_id"]) == reference
            warm.append(time.perf_counter() - start)

        # Every repeat stayed in the router: one placement total.
        assert client.metricsz()["cluster"]["placements"] == 1
        p50 = _quantile(warm, 0.50)
        bench_record(
            "cluster_warm[w2]",
            p50,
            p50_seconds=p50,
            p99_seconds=_quantile(warm, 0.99),
            jobs=len(warm),
            workers=2,
            speedup_vs_cold=round(cold_seconds / max(p50, 1e-9), 1),
        )


def test_failover_recovery_latency(tmp_path_factory, bench_record):
    """SIGKILL the owning worker mid-solve; time reroute-and-resume."""
    tmp_path = tmp_path_factory.mktemp("cluster-failover")
    netlist = planted_hierarchy_hypergraph(64, height=2, seed=2)
    hierarchy = binary_hierarchy(netlist.total_size(), height=2)
    slow = JobSpec.from_parts(
        netlist,
        hierarchy,
        {
            "iterations": 2,
            "constructions_per_metric": 2,
            "engine": "python",
            "max_rounds": 32,
            "delta": 0.3,
            "seed": 7,
        },
    )
    with Cluster(2, tmp_path, shared_ckpt=True) as cluster:
        client = cluster.client
        submitted = client.submit_spec(slow)
        victim = submitted["worker"]

        ckpt_dir = tmp_path / "ckpt" / submitted["spec_hash"]
        deadline = time.monotonic() + 60
        while not list(ckpt_dir.glob("ckpt-*.json")):
            assert time.monotonic() < deadline, "no checkpoint before kill"
            time.sleep(0.02)

        killed_at = time.perf_counter()
        cluster.workers[victim].kill()
        cluster.workers[victim].wait(timeout=10)

        finished = client.wait(submitted["job_id"], timeout=300)
        recovery_seconds = time.perf_counter() - killed_at
        assert finished["state"] == "done", finished.get("error")
        assert finished["reroutes"] >= 1

        bench_record(
            "cluster_failover[kill1of2]",
            recovery_seconds,
            recovery_seconds=recovery_seconds,
            reroutes=finished["reroutes"],
            workers=2,
        )
