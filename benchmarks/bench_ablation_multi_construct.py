"""Ablation: multiple partitions per spreading metric.

The paper's conclusions: "we may improve the results from constructing
multiple partitions for the same spreading metric without a significant
increase on the run time" — the metric computation dominates, so extra
constructions are nearly free.  This bench measures cost and runtime for
M in {1, 4, 8} constructions per metric.
"""

import pytest
from conftest import emit

from repro.analysis.tables import Table
from repro.core.flow_htp import FlowHTPConfig, flow_htp
from repro.core.spreading_metric import SpreadingMetricConfig
from repro.htp.hierarchy import binary_hierarchy
from repro.hypergraph.expansion import to_graph
from repro.hypergraph.generators import iscas85_surrogate

COUNTS = (1, 4, 8)
_results = {}


@pytest.fixture(scope="module")
def instance(experiment_config):
    netlist = iscas85_surrogate("c1355", scale=experiment_config.scale)
    spec = binary_hierarchy(netlist.total_size(), height=4)
    graph = to_graph(netlist)
    return netlist, spec, graph


@pytest.mark.parametrize("constructions", COUNTS)
def test_constructions_per_metric(benchmark, instance, constructions):
    netlist, spec, graph = instance
    config = FlowHTPConfig(
        iterations=1,
        constructions_per_metric=constructions,
        seed=1,
        metric=SpreadingMetricConfig(
            alpha=0.3, delta=0.03, epsilon=0.1, max_rounds=1000
        ),
    )
    result = benchmark.pedantic(
        flow_htp,
        args=(netlist, spec),
        kwargs={"config": config, "graph": graph},
        rounds=1,
        iterations=1,
    )
    _results[constructions] = (result.cost, result.runtime_seconds)


def test_report(benchmark, results_dir):
    table = Table(
        title="ABLATION - constructions per metric (paper conclusion)",
        headers=["M", "FLOW cost", "seconds"],
    )
    for count in COUNTS:
        if count in _results:
            cost, seconds = _results[count]
            table.add_row(count, cost, round(seconds, 2))
    rendered = benchmark.pedantic(table.render, rounds=1, iterations=1)
    emit(results_dir, "ablation_multi_construct.txt", rendered)
    if all(c in _results for c in COUNTS):
        # best-of-M with the same seed can only improve on M = 1
        assert _results[8][0] <= _results[1][0] + 1e-9
