"""Scaling: the multilevel FLOW V-cycle vs flat FLOW vs FM-multilevel.

The scaling story of docs/multilevel.md, measured.  On Rent-rule
instances of 10k and 100k nodes (``rent_hypergraph``), three engines run
under identical hierarchy specs:

* ``multilevel-flow`` — the V-cycle with FLOW at the coarsest level and
  corridor max-flow refinement;
* ``multilevel-fm`` — the same V-cycle with RFM/FM (the quality bar the
  acceptance criterion compares against);
* ``flat-flow`` — the 1997 algorithm run directly, under a wall-clock
  budget of 10x the V-cycle's time (an abort means "at least 10x
  slower", which is the scaling claim).

``REPRO_BENCH_SCALE`` shrinks the instances for the verify.sh smoke
profile; the full-scale quality/ordering assertions only engage at
scale >= 1.0.
"""

import os
import time

import pytest
from conftest import emit

from repro.analysis.tables import Table
from repro.core.flow_htp import FlowHTPConfig, flow_htp
from repro.core.spreading_metric import SpreadingMetricConfig
from repro.errors import SolverAborted
from repro.htp.hierarchy import binary_hierarchy
from repro.htp.validate import partition_violations
from repro.hypergraph.generators import rent_hypergraph
from repro.partitioning.multilevel_flow import (
    MultilevelFlowConfig,
    multilevel_flow_htp,
    multilevel_fm_htp,
)

_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
_SIZES = (10_000, 100_000)
_SEED = 7
_results = {}


def _height(nodes: int) -> int:
    if nodes < 5_000:
        return 4
    if nodes < 50_000:
        return 5
    return 6


def _instance(base_nodes: int):
    nodes = max(64, int(base_nodes * _SCALE))
    netlist = rent_hypergraph(nodes, seed=_SEED)
    spec = binary_hierarchy(netlist.total_size(), height=_height(nodes))
    return netlist, spec


@pytest.mark.parametrize("base_nodes", _SIZES)
def test_multilevel_scaling(bench_record, base_nodes):
    netlist, spec = _instance(base_nodes)
    label = f"rent{netlist.num_nodes}"
    entry = {"nodes": netlist.num_nodes, "nets": netlist.num_nets}

    started = time.perf_counter()
    ml_flow = multilevel_flow_htp(netlist, spec, MultilevelFlowConfig(seed=1))
    ml_flow_seconds = time.perf_counter() - started
    assert partition_violations(netlist, ml_flow.partition, spec) == []
    entry["multilevel_flow"] = {
        "cost": ml_flow.cost,
        "seconds": round(ml_flow_seconds, 3),
    }
    bench_record(
        f"multilevel_flow[{label}]", ml_flow_seconds, cost=ml_flow.cost
    )

    started = time.perf_counter()
    ml_fm = multilevel_fm_htp(netlist, spec, MultilevelFlowConfig(seed=1))
    ml_fm_seconds = time.perf_counter() - started
    assert partition_violations(netlist, ml_fm.partition, spec) == []
    entry["multilevel_fm"] = {
        "cost": ml_fm.cost,
        "seconds": round(ml_fm_seconds, 3),
    }
    bench_record(f"multilevel_fm[{label}]", ml_fm_seconds, cost=ml_fm.cost)

    # Flat FLOW under a 10x budget: an abort IS the scaling result.
    budget = min(10.0 * ml_flow_seconds, 600.0)
    deadline = time.monotonic() + budget
    flat_config = FlowHTPConfig(
        iterations=2,
        seed=1,
        metric=SpreadingMetricConfig(delta=0.05, max_rounds=200, seed=1),
    )
    started = time.perf_counter()
    try:
        flat = flow_htp(
            netlist,
            spec,
            flat_config,
            abort_check=lambda: (
                "budget exhausted" if time.monotonic() > deadline else None
            ),
        )
        flat_seconds = time.perf_counter() - started
        entry["flat_flow"] = {
            "cost": flat.cost,
            "seconds": round(flat_seconds, 3),
            "aborted": False,
            "budget_seconds": round(budget, 3),
        }
        bench_record(f"flat_flow[{label}]", flat_seconds, cost=flat.cost)
    except SolverAborted:
        flat_seconds = time.perf_counter() - started
        entry["flat_flow"] = {
            "cost": None,
            "seconds": round(flat_seconds, 3),
            "aborted": True,
            "budget_seconds": round(budget, 3),
        }
        bench_record(
            f"flat_flow[{label}]", flat_seconds, cost=None, aborted=True
        )

    bench_record(f"multilevel_scaling[{label}]", ml_flow_seconds, **entry)
    _results[base_nodes] = entry

    if _SCALE >= 1.0:
        # The acceptance criteria of the scaling story: quality no worse
        # than the FM V-cycle, and flat FLOW out of budget (or >= 10x
        # slower) on the big instance.
        assert ml_flow.cost <= ml_fm.cost
        if base_nodes >= 100_000:
            flat_entry = entry["flat_flow"]
            assert flat_entry["aborted"] or (
                flat_entry["seconds"] >= 10.0 * ml_flow_seconds
            )


def test_report(results_dir):
    table = Table(
        title="MULTILEVEL - V-cycle scaling (docs/multilevel.md)",
        headers=[
            "instance",
            "#nodes",
            "ml-flow cost",
            "ml-flow s",
            "ml-fm cost",
            "ml-fm s",
            "flat cost",
            "flat s",
        ],
    )
    for base_nodes in _SIZES:
        if base_nodes not in _results:
            continue
        entry = _results[base_nodes]
        flat = entry["flat_flow"]
        table.add_row(
            f"rent{entry['nodes']}",
            entry["nodes"],
            entry["multilevel_flow"]["cost"],
            entry["multilevel_flow"]["seconds"],
            entry["multilevel_fm"]["cost"],
            entry["multilevel_fm"]["seconds"],
            "aborted" if flat["aborted"] else flat["cost"],
            flat["seconds"],
        )
    emit(results_dir, "multilevel.txt", table.render())
