"""Micro-benchmarks of the batched spreading-metric engine.

Times the Algorithm-2 hot paths that the batched/incremental engine
rebuilt — ``compute_spreading_metric`` end to end (batched vs the serial
reference), the batched oracle sweep, and the incremental MST-subtree
cut evaluation — asserting bit-identical results while recording
medians + perf counters for the ``--bench-json`` trajectory
(``BENCH_micro.json`` at the repo root).

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_spreading_batch.py \
        -q --bench-json BENCH_micro.json
"""

from __future__ import annotations

import random
import statistics
import time

import numpy as np
import pytest

from repro.core.constraints import SpreadingOracle
from repro.core.construct import find_cut
from repro.core.perf import PerfCounters
from repro.core.spreading_metric import (
    SpreadingMetricConfig,
    compute_spreading_metric,
)
from repro.htp.hierarchy import binary_hierarchy
from repro.hypergraph.expansion import to_graph
from repro.hypergraph.generators import iscas85_surrogate
from repro.hypergraph.hypergraph import Hypergraph


def _median_time(fn, repeats: int):
    """Median wall time of ``fn`` over ``repeats`` runs (plus last result)."""
    times = []
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        times.append(time.perf_counter() - start)
    return statistics.median(times), result


@pytest.fixture(scope="module")
def instance(experiment_config):
    netlist = iscas85_surrogate("c2670", scale=experiment_config.scale)
    spec = binary_hierarchy(netlist.total_size(), height=4)
    graph = to_graph(netlist)
    return netlist, spec, graph


@pytest.mark.parametrize(
    "label,metric_kwargs,repeats",
    [
        ("c2670", {}, 3),
        ("c2670,headline", {"alpha": 0.3, "delta": 0.03, "epsilon": 0.1}, 3),
    ],
)
def test_spreading_metric_batched_vs_serial(
    instance, bench_record, label, metric_kwargs, repeats
):
    """Batched engine vs the serial reference: identical output, timed."""
    _netlist, spec, graph = instance

    last_counters = {}

    def run_batched():
        counters = PerfCounters()
        result = compute_spreading_metric(
            graph,
            spec,
            SpreadingMetricConfig(engine="scipy", **metric_kwargs),
            counters=counters,
        )
        last_counters["value"] = counters
        return result

    batched_s, batched = _median_time(run_batched, repeats)
    serial_s, serial = _median_time(
        lambda: compute_spreading_metric(
            graph,
            spec,
            SpreadingMetricConfig(engine="scipy-serial", **metric_kwargs),
        ),
        repeats,
    )

    assert np.array_equal(batched.lengths, serial.lengths)
    assert np.array_equal(batched.flows, serial.flows)
    assert batched.injections == serial.injections
    assert batched.rounds == serial.rounds
    assert batched.satisfied == serial.satisfied

    bench_record(
        f"compute_spreading_metric[{label}]",
        batched_s,
        serial_seconds=serial_s,
        speedup=serial_s / batched_s,
        counters=last_counters["value"].as_dict(),
    )


def test_spreading_metric_parallel_vs_batched(instance, bench_record):
    """Process-pool engine vs in-process batched: identical output, timed.

    The speedup column reflects *this container's* core count
    (``os.cpu_count()``).  On a single-core runner the engine
    auto-serialises (``ParallelConfig.autoserial``): it takes the
    bit-identical in-process batched path instead of paying pure
    dispatch overhead, so the dispatch penalty is structurally zero and
    the row records ``speedup = 1.0`` with ``autoserial: true`` (both
    raw timings are kept; they sample the *same* code path).  Real
    pool speedup only materialises with real cores.
    """
    import os

    from repro.core.parallel import ParallelConfig

    _netlist, spec, graph = instance
    metric_kwargs = {"alpha": 0.3, "delta": 0.03, "epsilon": 0.1}
    last_counters = {}

    def run_parallel():
        counters = PerfCounters()
        result = compute_spreading_metric(
            graph,
            spec,
            SpreadingMetricConfig(
                engine="parallel",
                parallel=ParallelConfig(workers=4),
                **metric_kwargs,
            ),
            counters=counters,
        )
        last_counters["value"] = counters
        return result

    parallel_s, parallel = _median_time(run_parallel, 3)
    batched_s, batched = _median_time(
        lambda: compute_spreading_metric(
            graph,
            spec,
            SpreadingMetricConfig(engine="scipy", **metric_kwargs),
        ),
        3,
    )

    assert np.array_equal(parallel.lengths, batched.lengths)
    assert np.array_equal(parallel.flows, batched.flows)
    assert parallel.injections == batched.injections
    assert parallel.rounds == batched.rounds

    autoserial = last_counters["value"].pool_autoserial > 0
    bench_record(
        "compute_spreading_metric[c2670,headline,parallel4]",
        parallel_s,
        serial_seconds=batched_s,
        # Identical code path when auto-serialised: the honest speedup
        # is exactly 1.0 and the raw timings only sample noise.
        speedup=1.0 if autoserial else batched_s / parallel_s,
        autoserial=autoserial,
        cpu_count=os.cpu_count(),
        counters=last_counters["value"].as_dict(),
    )


def test_spreading_metric_native_vs_scipy(instance, bench_record):
    """Compiled kernel vs both scipy engines: identical output, timed.

    The headline row of the native tier: the fused C kernel answers the
    same per-source first-violation queries as ``scipy-serial`` with an
    early exit at the first violated prefix, recording the
    ``kernel_seconds`` / ``python_overhead_seconds`` phase split.  Skips
    (and leaves no row) when the extension is not built; ``verify.sh``
    logs the same condition as a build SKIP.
    """
    import os
    import sysconfig

    from repro.core import _kernel as native_kernel

    if not native_kernel.available():
        pytest.skip("native kernel extension not built")

    _netlist, spec, graph = instance
    metric_kwargs = {"alpha": 0.3, "delta": 0.03, "epsilon": 0.1}
    last_counters = {}

    def run_native():
        counters = PerfCounters()
        result = compute_spreading_metric(
            graph,
            spec,
            SpreadingMetricConfig(engine="native", **metric_kwargs),
            counters=counters,
        )
        last_counters["value"] = counters
        return result

    native_s, native = _median_time(run_native, 3)
    scipy_s, batched = _median_time(
        lambda: compute_spreading_metric(
            graph,
            spec,
            SpreadingMetricConfig(engine="scipy", **metric_kwargs),
        ),
        3,
    )
    serial_s, serial = _median_time(
        lambda: compute_spreading_metric(
            graph,
            spec,
            SpreadingMetricConfig(engine="scipy-serial", **metric_kwargs),
        ),
        3,
    )

    assert np.array_equal(native.lengths, serial.lengths)
    assert np.array_equal(native.lengths, batched.lengths)
    assert np.array_equal(native.flows, serial.flows)
    assert native.injections == serial.injections
    assert native.rounds == serial.rounds
    assert native.satisfied == serial.satisfied

    counters = last_counters["value"]
    bench_record(
        "compute_spreading_metric[c2670,headline,native]",
        native_s,
        serial_seconds=serial_s,
        scipy_seconds=scipy_s,
        speedup=serial_s / native_s,
        speedup_vs_scipy=scipy_s / native_s,
        cpu_count=os.cpu_count(),
        compiler=sysconfig.get_config_var("CC"),
        phase_seconds=dict(counters.phase_seconds),
        counters=counters.as_dict(),
    )


def test_oracle_batch_sweep(instance, bench_record):
    """One batched sweep over many sources vs one serial call per source."""
    _netlist, spec, graph = instance
    rng = np.random.RandomState(0)
    lengths = rng.uniform(0.01, 1.0, graph.num_edges)
    sources = list(range(min(200, graph.num_nodes)))

    oracle = SpreadingOracle(graph, spec)
    oracle.set_lengths(lengths)
    batched_s, batched = _median_time(
        lambda: oracle.violations_for_batch(sources), 5
    )
    serial_s, serial = _median_time(
        lambda: [oracle.violation_for(v) for v in sources], 5
    )
    assert batched == serial

    bench_record(
        f"oracle_sweep_{len(sources)}_sources[c2670]",
        batched_s,
        serial_seconds=serial_s,
        speedup=serial_s / batched_s,
    )


def test_mst_incremental_nested_candidates(bench_record):
    """Deeply nested subtree candidates — the incremental sweep's O(n) case.

    A path hypergraph makes every suffix a candidate head: the seed's
    per-head ``cut_of`` rescan was O(n^2) here (~1.7 s at n = 3000).
    """
    n = 3000
    netlist = Hypergraph(
        num_nodes=n, nets=[(i, i + 1) for i in range(n - 1)]
    )
    graph = to_graph(netlist)
    lengths = [1.0] * graph.num_edges
    last_counters = {}

    def run():
        counters = PerfCounters()
        region = find_cut(
            netlist,
            graph,
            lengths,
            list(range(n)),
            2.0,
            float(n - 1),
            random.Random(0),
            strategy="mst",
            max_cut_evals=10**6,
            counters=counters,
        )
        last_counters["value"] = counters
        return region

    seconds, region = _median_time(run, 3)
    assert 2 <= len(region) <= n - 1

    bench_record(
        f"find_cut_mst_nested[path{n}]",
        seconds,
        counters=last_counters["value"].as_dict(),
    )
